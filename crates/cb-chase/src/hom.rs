//! Homomorphism (trigger / containment-mapping) search.
//!
//! A homomorphism maps the variables of a dependency side (or of a whole
//! query, for containment) into the variables of a target query such that
//!
//! * every binding `x in P` is matched by a membership fact `v in P'` of
//!   the target with `h(P) ≡ P'` (congruence modulo the target's
//!   conditions), and
//! * every equality of the source is implied by the target's congruence.
//!
//! The search is a deterministic backtracking enumeration over the
//! target's membership facts, checking equalities as soon as both sides
//! are instantiated.

use std::collections::BTreeMap;

use pcql::path::Path;
use pcql::query::{Binding, Equality};

use crate::canon::QueryGraph;

/// A variable assignment from source variables to target paths (always
/// `Path::Var` of target variables in practice).
pub type Assignment = BTreeMap<String, Path>;

/// Enumerates homomorphisms extending `init`, up to `limit` results.
pub fn find_homomorphisms(
    graph: &mut QueryGraph,
    bindings: &[Binding],
    eqs: &[Equality],
    init: &Assignment,
    limit: usize,
) -> Vec<Assignment> {
    let mut results = Vec::new();
    let mut h = init.clone();
    search(graph, bindings, eqs, &mut h, 0, limit, &mut results);
    results
}

/// Does any homomorphism extending `init` exist? Used for chase
/// applicability (extension over the existential side) and implication
/// conclusions.
pub fn extension_exists(
    graph: &mut QueryGraph,
    bindings: &[Binding],
    eqs: &[Equality],
    init: &Assignment,
) -> bool {
    !find_homomorphisms(graph, bindings, eqs, init, 1).is_empty()
}

/// Finds the first homomorphism extending `init` that `accept` approves,
/// testing at most `limit` complete assignments.
///
/// This is the streaming counterpart of [`find_homomorphisms`]: the
/// containment and chase-applicability tests need *one* witness
/// satisfying an extra condition (matching outputs, missing extension),
/// and materializing the full — worst-case exponential — homomorphism
/// set first just to scan it afterwards dominated the backchase profile.
pub fn find_matching_hom(
    graph: &mut QueryGraph,
    bindings: &[Binding],
    eqs: &[Equality],
    init: &Assignment,
    limit: usize,
    accept: &mut dyn FnMut(&mut QueryGraph, &Assignment) -> bool,
) -> Option<Assignment> {
    let mut h = init.clone();
    let mut tested = 0usize;
    search_first(graph, bindings, eqs, &mut h, 0, limit, &mut tested, accept)
}

#[allow(clippy::too_many_arguments)]
fn search_first(
    graph: &mut QueryGraph,
    bindings: &[Binding],
    eqs: &[Equality],
    h: &mut Assignment,
    depth: usize,
    limit: usize,
    tested: &mut usize,
    accept: &mut dyn FnMut(&mut QueryGraph, &Assignment) -> bool,
) -> Option<Assignment> {
    if *tested >= limit {
        return None;
    }
    if depth == bindings.len() {
        *tested += 1;
        if eqs_hold(graph, eqs, h, true) && accept(graph, h) {
            return Some(h.clone());
        }
        return None;
    }
    let b = &bindings[depth];
    if !b.src.free_vars().iter().all(|v| h.contains_key(v)) {
        debug_assert!(
            false,
            "unassigned pattern variables in {} (ill-scoped)",
            b.src
        );
        return None;
    }
    let src = b.src.subst(h);
    let src_class = graph.egraph.add_path(&src);
    let src_class = graph.egraph.find(src_class);
    let candidates: Vec<String> = graph
        .members
        .iter()
        .filter(|m| graph.egraph.find(m.src_class) == src_class)
        .map(|m| m.var.clone())
        .collect();
    for var in candidates {
        h.insert(b.var.clone(), Path::Var(var));
        if eqs_hold(graph, eqs, h, false) {
            if let Some(found) =
                search_first(graph, bindings, eqs, h, depth + 1, limit, tested, accept)
            {
                h.remove(&b.var);
                return Some(found);
            }
        }
        h.remove(&b.var);
        if *tested >= limit {
            return None;
        }
    }
    None
}

/// Validates a *total* candidate assignment as a homomorphism without
/// searching: every binding variable must map into a membership fact over
/// a congruent source, and every equality must hold. Lets the backchase
/// seed a child subquery's containment check from its parent's witness
/// (the child's surviving variables are a subset of the parent's) and
/// skip the backtracking search entirely on success.
pub fn hom_is_valid(
    graph: &mut QueryGraph,
    bindings: &[Binding],
    eqs: &[Equality],
    h: &Assignment,
) -> bool {
    for b in bindings {
        let Some(image) = h.get(&b.var) else {
            return false;
        };
        if !b.src.free_vars().iter().all(|v| h.contains_key(v)) {
            return false;
        }
        let src = b.src.subst(h);
        if !graph.has_member(&src, image) {
            return false;
        }
    }
    eqs_hold(graph, eqs, h, true)
}

fn search(
    graph: &mut QueryGraph,
    bindings: &[Binding],
    eqs: &[Equality],
    h: &mut Assignment,
    depth: usize,
    limit: usize,
    results: &mut Vec<Assignment>,
) {
    if results.len() >= limit {
        return;
    }
    if depth == bindings.len() {
        if eqs_hold(graph, eqs, h, true) {
            results.push(h.clone());
        }
        return;
    }
    let b = &bindings[depth];
    // Dependent-binding scoping guarantees the source's pattern variables
    // were all assigned by earlier levels (or by `init`); an unassigned
    // one would capture a target variable of the same name, so bail out.
    if !b.src.free_vars().iter().all(|v| h.contains_key(v)) {
        debug_assert!(
            false,
            "unassigned pattern variables in {} (ill-scoped)",
            b.src
        );
        return;
    }
    let src = b.src.subst(h);
    let src_class = graph.egraph.add_path(&src);
    let src_class = graph.egraph.find(src_class);
    let candidates: Vec<String> = graph
        .members
        .iter()
        .filter(|m| graph.egraph.find(m.src_class) == src_class)
        .map(|m| m.var.clone())
        .collect();
    for var in candidates {
        h.insert(b.var.clone(), Path::Var(var));
        // Check the equalities that are now fully instantiated; the rest
        // wait for deeper assignments.
        if eqs_hold(graph, eqs, h, false) {
            search(graph, bindings, eqs, h, depth + 1, limit, results);
        }
        h.remove(&b.var);
        if results.len() >= limit {
            return;
        }
    }
}

/// Checks the equalities whose variables are all assigned; with
/// `require_all`, unassigned equalities fail instead of being deferred.
/// Pattern equalities mention only pattern variables (EPCD scoping), so
/// "assigned" means "present in `h`" — a query variable of the same name
/// must never leak in (that was once a capture bug).
fn eqs_hold(graph: &mut QueryGraph, eqs: &[Equality], h: &Assignment, require_all: bool) -> bool {
    for eq in eqs {
        let vars = eq.free_vars();
        let ready = vars.iter().all(|v| h.contains_key(v));
        if !ready {
            if require_all {
                return false;
            }
            continue;
        }
        let l = eq.0.subst(h);
        let r = eq.1.subst(h);
        if !graph.egraph.paths_equal(&l, &r) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::{parse_dependency, parse_query};

    fn graph(src: &str) -> (QueryGraph, pcql::Query) {
        let q = parse_query(src).unwrap();
        (QueryGraph::of_query(&q), q)
    }

    #[test]
    fn matches_simple_binding() {
        let (mut g, _) = graph("select x from R x, S y");
        let d = parse_dependency("d", "forall (a in R) -> a = a").unwrap();
        let homs = find_homomorphisms(&mut g, &d.forall, &d.premise, &BTreeMap::new(), 10);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0]["a"], Path::var("x"));
    }

    #[test]
    fn respects_premise_equalities() {
        let (mut g, _) = graph(r#"select x from R x, R y where x.A = 1 and y.A = 2"#);
        // Premise x.A = 1 only matches the first binding.
        let d = parse_dependency("d", "forall (a in R) where a.A = 1 -> a = a").unwrap();
        let homs = find_homomorphisms(&mut g, &d.forall, &d.premise, &BTreeMap::new(), 10);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0]["a"], Path::var("x"));
    }

    #[test]
    fn dependent_bindings_follow_assignments() {
        let (mut g, _) = graph("select s from depts d, d.DProjs s");
        let dep = parse_dependency("d", "forall (a in depts) (b in a.DProjs) -> a = a").unwrap();
        let homs = find_homomorphisms(&mut g, &dep.forall, &dep.premise, &BTreeMap::new(), 10);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0]["b"], Path::var("s"));
    }

    #[test]
    fn congruent_sources_match() {
        // y ranges over e.DProjs and e = d, so a binding over d.DProjs
        // must match it.
        let (mut g, _) = graph("select y from depts d, depts e, e.DProjs y where d = e");
        let dep = parse_dependency("d", "forall (a in depts) (b in a.DProjs) -> a = a").unwrap();
        let homs = find_homomorphisms(&mut g, &dep.forall, &dep.premise, &BTreeMap::new(), 10);
        // a can be d or e; b is y in both cases.
        assert_eq!(homs.len(), 2);
        assert!(homs.iter().all(|h| h["b"] == Path::var("y")));
    }

    #[test]
    fn enumerates_all_and_respects_limit() {
        let (mut g, _) = graph("select x from R x, R y, R z");
        let d = parse_dependency("d", "forall (a in R) (b in R) -> a = a").unwrap();
        let all = find_homomorphisms(&mut g, &d.forall, &d.premise, &BTreeMap::new(), 100);
        assert_eq!(all.len(), 9);
        let some = find_homomorphisms(&mut g, &d.forall, &d.premise, &BTreeMap::new(), 4);
        assert_eq!(some.len(), 4);
    }

    #[test]
    fn extension_with_fixed_universals() {
        let (mut g, _) = graph("select p from Proj p, dom(I) i where i = p.PName");
        // With a fixed p, does an i with i = p.PName exist?
        let d = parse_dependency(
            "d",
            "forall (p in Proj) -> exists (i in dom(I)) where i = p.PName",
        )
        .unwrap();
        let init: Assignment = [("p".to_string(), Path::var("p"))].into();
        assert!(extension_exists(&mut g, &d.exists, &d.conclusion, &init));

        // But not one with i = p.Other.
        let d2 = parse_dependency(
            "d",
            "forall (p in Proj) -> exists (i in dom(I)) where i = p.Other",
        )
        .unwrap();
        assert!(!extension_exists(&mut g, &d2.exists, &d2.conclusion, &init));
    }

    #[test]
    fn no_match_when_source_absent() {
        let (mut g, _) = graph("select x from R x");
        let d = parse_dependency("d", "forall (a in S) -> a = a").unwrap();
        assert!(find_homomorphisms(&mut g, &d.forall, &d.premise, &BTreeMap::new(), 10).is_empty());
    }
}
