//! The backchase (paper §3, phase 2) and generalized tableau
//! minimization.
//!
//! A backchase step removes a (dependency-closed) set of bindings from a
//! query, producing a *subquery* `Q'` such that
//!
//! 1. the conditions `C'` of `Q'` are implied by the conditions `C` of
//!    `Q` — we compute the **maximal** implied set via the congruence
//!    closure, as the paper requires for completeness;
//! 2. the output `O'` is equal to `O` under `C` — outputs are re-expressed
//!    by congruence-class extraction avoiding the removed variables;
//! 3. `Q'` is equivalent to `Q` under `D ∪ D'`.
//!
//! Condition 3 comes in two flavours, both implemented here:
//!
//! * [`backchase_step`] — the paper's §3 *rewrite rule*: discharge the
//!   reconstruction constraint `forall(remaining) C' -> exists(removed) C`
//!   with the chase-based implication prover. Sound, and what a
//!   rule-based optimizer would run; but a single-binding rule can miss
//!   jointly-removable binding groups (remove `r` alone from
//!   `R ⋈ S ⊑ V`-chases and the witness for `s` is lost even though
//!   `{r, s}` together are redundant).
//! * [`backchase`] — the paper's §5 *enumeration*: descend the subquery
//!   lattice of the universal plan one binding at a time, keeping a
//!   subquery only if it is **equivalent to the universal plan** (chase
//!   containment both ways), and pruning entire sublattices under
//!   non-equivalent subqueries ("whenever a subquery of chase(Q) is not
//!   equivalent to the latter, neither are its subqueries"). This is the
//!   complete procedure of Theorem 2 and the one Algorithm 1 uses.
//!
//! Additionally, every failing lookup of a produced subquery must remain
//! *well-defined*: syntactically guarded by a `dom` binding, or provably
//! non-failing under the constraints (this is what legitimizes plans like
//! P4, while rejecting a bare `SI["CitiBank"]` whose key may be absent —
//! that rewrite is only sound with the *non-failing* lookup, which the
//! optimizer's plan-cleanup pass introduces separately).
//!
//! With an empty dependency set the backchase is exactly generalized
//! tableau minimization.
//!
//! The enumeration itself is factored into [`PlanSearch`], a streaming
//! driver that hands each equivalence-verified subquery to a visitor
//! which steers the walk ([`Visit::Explore`] / [`Visit::Prune`] /
//! [`Visit::Accept`]); [`backchase`] and [`backchase_in`] are its
//! collect-everything instantiations, and the optimizer's cost-guided
//! branch-and-bound strategy is another.

use std::collections::{BTreeSet, BinaryHeap};
use std::time::{Duration, Instant};

use pcql::idgen::VarGen;
use pcql::path::Path;
use pcql::query::{Binding, Equality, Output, Query};
use pcql::Dependency;

use crate::canon::QueryGraph;
use crate::chase::ChaseConfig;
use crate::containment::{contained_in_pre_chased, output_matching_hom};
use crate::context::{ChaseContext, ChaseProver};
use crate::egraph::EGraph;
use crate::hom::Assignment;

/// Budgets for backchase enumeration.
#[derive(Debug, Clone, Default)]
pub struct BackchaseConfig {
    pub chase: ChaseConfig,
    /// Maximum number of distinct subqueries to explore (0 = unlimited).
    pub max_visited: usize,
}

/// The set of plans produced by backchasing.
#[derive(Debug, Clone)]
pub struct BackchaseOutcome {
    /// Normal forms: equivalent subqueries from which no further binding
    /// can be removed — the minimal plans.
    pub normal_forms: Vec<Query>,
    /// Every equivalent subquery encountered (including the input); each
    /// is a sound plan, so the optimizer may cost them all.
    pub visited: Vec<Query>,
    /// False if `max_visited` was hit.
    pub complete: bool,
}

/// Extends a removal set with the bindings that (transitively) depend on
/// it and cannot be re-expressed without it (footnote 7 of the paper).
/// Monotone in the seed set: a larger seed only forbids more
/// re-expressions, so anything dragged along by a subset is dragged along
/// by the superset too (the must-remain analysis leans on this).
pub(crate) fn dependent_closure(
    q: &Query,
    graph: &mut QueryGraph,
    seed_set: BTreeSet<String>,
) -> BTreeSet<String> {
    let mut removed = seed_set;
    loop {
        let mut changed = false;
        for b in &q.from {
            if removed.contains(&b.var) {
                continue;
            }
            if b.src.free_vars().iter().any(|v| removed.contains(v)) {
                let class = graph.egraph.add_path(&b.src);
                // A source may not mention its own variable, so forbid it
                // during re-expression too.
                let mut forbidden = removed.clone();
                forbidden.insert(b.var.clone());
                if graph.egraph.extract(class, &forbidden).is_none() {
                    removed.insert(b.var.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            return removed;
        }
    }
}

/// Computes the *syntactic* subquery for a removal set over `q`'s
/// canonical database: re-expressed bindings, re-expressed output
/// (condition 2) and the maximal implied conditions `C'` (condition 1).
/// `None` if the output or a surviving binding cannot be re-expressed.
pub(crate) fn subquery_for(
    q: &Query,
    graph: &mut QueryGraph,
    removed: &BTreeSet<String>,
) -> Option<Query> {
    if removed.len() >= q.from.len() {
        return None;
    }
    // Remaining bindings, re-expressed where needed, in a valid
    // dependency order.
    let mut remaining: Vec<Binding> = Vec::new();
    for b in &q.from {
        if removed.contains(&b.var) {
            continue;
        }
        let src = if b.src.free_vars().iter().any(|v| removed.contains(v)) {
            let class = graph.egraph.add_path(&b.src);
            let mut forbidden = removed.clone();
            forbidden.insert(b.var.clone());
            graph.egraph.extract(class, &forbidden)?
        } else {
            b.src.clone()
        };
        remaining.push(Binding {
            var: b.var.clone(),
            src,
            kind: b.kind,
        });
    }
    let remaining = topo_order(remaining)?;

    // Output re-expressed over the remaining variables (condition 2).
    let output = rewrite_output(graph, &q.output, removed)?;

    // C': the maximal set of equalities implied by C over the remaining
    // variables, as congruence-class chains, redundancy-filtered.
    let where_ = implied_conditions(graph, removed);

    let q_prime = Query::new(output, remaining, where_);
    debug_assert!(
        q_prime.check_scopes().is_ok(),
        "subquery scoping broke: {q_prime}"
    );
    Some(q_prime)
}

/// The paper's §3 backchase **rewrite rule**: remove the binding of
/// `seed` (with its dependent closure) when the reconstruction constraint
/// is implied by `deps`. Sound; see the module docs for why the full
/// enumeration uses equivalence pruning instead.
pub fn backchase_step(
    q: &Query,
    deps: &[Dependency],
    seed: &str,
    cfg: &ChaseConfig,
) -> Option<Query> {
    let mut ctx = ChaseContext::new(deps.to_vec(), cfg.clone());
    backchase_step_in(&mut ctx, q, seed)
}

/// [`backchase_step`] against a shared [`ChaseContext`].
pub fn backchase_step_in(ctx: &mut ChaseContext, q: &Query, seed: &str) -> Option<Query> {
    if !q.from.iter().any(|b| b.var == seed) {
        return None;
    }
    let mut graph = QueryGraph::of_query(q);
    let removed = dependent_closure(q, &mut graph, [seed.to_string()].into());
    let q_prime = subquery_for(q, &mut graph, &removed)?;
    let q_prime = prune_unsafe_conditions(ctx, &q_prime)?;
    // Condition (3): forall(remaining) C' -> exists(removed) C.
    let removed_bindings: Vec<Binding> = q
        .from
        .iter()
        .filter(|b| removed.contains(&b.var))
        .cloned()
        .collect();
    let sigma = Dependency::new(
        "backchase-step",
        q_prime.from.clone(),
        q_prime.where_.clone(),
        removed_bindings,
        q.where_.clone(),
    );
    if !ctx.implies(&sigma) {
        return None;
    }
    Some(q_prime)
}

/// Orders bindings so each source only mentions earlier variables.
fn topo_order(bindings: Vec<Binding>) -> Option<Vec<Binding>> {
    let mut rest = bindings;
    let mut placed: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::with_capacity(rest.len());
    while !rest.is_empty() {
        let pos = rest
            .iter()
            .position(|b| b.src.free_vars().iter().all(|v| placed.contains(v)))?;
        let b = rest.remove(pos);
        placed.insert(b.var.clone());
        out.push(b);
    }
    Some(out)
}

/// Re-expresses every output path avoiding the removed variables
/// (condition 2 of a backchase step). `None` exactly when some output
/// class has no realizable term outside `removed` — a verdict that can
/// only flip from `Some` to `None` as `removed` grows (extraction is
/// monotone in the forbidden set), which is what lets the must-remain
/// analysis treat a failure here as final for the whole sublattice.
pub(crate) fn rewrite_output(
    graph: &mut QueryGraph,
    output: &Output,
    removed: &BTreeSet<String>,
) -> Option<Output> {
    let mut rewrite = |p: &Path| -> Option<Path> {
        if p.free_vars().iter().any(|v| removed.contains(v)) {
            let class = graph.egraph.add_path(p);
            graph.egraph.extract(class, removed)
        } else {
            Some(p.clone())
        }
    };
    match output {
        Output::Struct(fields) => {
            let mut out = std::collections::BTreeMap::new();
            for (name, p) in fields {
                out.insert(name.clone(), rewrite(p)?);
            }
            Some(Output::Struct(out))
        }
        Output::Path(p) => Some(Output::Path(rewrite(p)?)),
    }
}

/// The maximal implied condition set `C'` over the surviving variables:
/// for every congruence class, chain together all realizable paths, then
/// drop equalities already implied by the ones emitted so far.
fn implied_conditions(graph: &QueryGraph, removed: &BTreeSet<String>) -> Vec<Equality> {
    let reals = graph.egraph.realizable_paths(removed);
    let mut candidates: Vec<Equality> = Vec::new();
    for paths in reals.values() {
        if paths.len() < 2 {
            continue;
        }
        let mut sorted = paths.clone();
        sorted.sort_by(|a, b| (a.size(), a).cmp(&(b.size(), b)));
        let pivot = sorted[0].clone();
        for p in sorted.into_iter().skip(1) {
            if p != pivot {
                candidates.push(Equality(pivot.clone(), p));
            }
        }
    }
    candidates.sort_by(|a, b| (a.0.size() + a.1.size(), a).cmp(&(b.0.size() + b.1.size(), b)));
    let mut check = EGraph::new();
    let mut out = Vec::new();
    for e in candidates {
        if !check.paths_equal(&e.0, &e.1) {
            check.union_paths(&e.0, &e.1);
            out.push(e);
        }
    }
    out
}

/// Makes a subquery *well-defined*: every failing lookup must be provably
/// non-failing at its evaluation point, where
///
/// * a lookup in the `i`-th binding's source sees only the bindings
///   before it (and no conditions — filters run after iteration);
/// * a lookup in the `where` clause sees all bindings but no conditions
///   (conjunct order is engine-defined);
/// * a lookup in the output sees all bindings and all conditions (outputs
///   are only evaluated for rows that pass the filter).
///
/// An unsafe lookup in a binding source or the output is fatal (`None`).
/// An unsafe lookup in a `where` condition is handled by *dropping* that
/// condition: `C'` only has to be implied by `C` (condition 1), not
/// maximal-at-all-costs, and the enumeration re-checks equivalence of the
/// pruned subquery anyway. (Without pruning, the maximal `C'` could smuggle
/// an index equation like `p = I[s]` into a plan whose own bindings cannot
/// guarantee `s ∈ dom(I)`.)
pub(crate) fn prune_unsafe_conditions<P: ChaseProver>(prover: &mut P, q: &Query) -> Option<Query> {
    let mut q = q.clone();
    loop {
        match first_unsafe(prover, &q) {
            None => return Some(q),
            Some((lookup, fatal)) => {
                if fatal {
                    return None;
                }
                let before = q.where_.len();
                q.where_.retain(|e| {
                    !e.0.subpaths().contains(&&lookup) && !e.1.subpaths().contains(&&lookup)
                });
                if q.where_.len() == before {
                    // The lookup did not come from a condition after all.
                    return None;
                }
            }
        }
    }
}

/// The first not-provably-safe failing lookup of `q`, tagged with whether
/// it is fatal (binding source / output) or condition-level. Safety
/// proofs go through the prover's memoized implication memo — any
/// [`ChaseProver`], so the sequential and the sharded parallel search run
/// the identical proof discipline; the congruence graph for guardedness
/// is built once per call (lazily), not once per obligation.
///
/// Public so that static analysis (cb-analyze's lookup-safety pass) can be
/// differentially checked against this prover: a lookup the syntactic
/// pre-pass declares safe must never be the one returned here.
pub fn first_unsafe<P: ChaseProver>(prover: &mut P, q: &Query) -> Option<(Path, bool)> {
    let mut checked: BTreeSet<Path> = BTreeSet::new();
    let mut guard_graph: Option<QueryGraph> = None;
    // (lookup, bindings in scope, assumable premise, fatal)
    let mut obligations: Vec<(Path, usize, bool, bool)> = Vec::new();
    for (i, b) in q.from.iter().enumerate() {
        for sub in b.src.subpaths() {
            if matches!(sub, Path::Get(_, _)) {
                obligations.push((sub.clone(), i, false, true));
            }
        }
    }
    for (_, p) in q.output.paths() {
        for sub in p.subpaths() {
            if matches!(sub, Path::Get(_, _)) {
                obligations.push((sub.clone(), q.from.len(), true, true));
            }
        }
    }
    for eq in &q.where_ {
        for p in [&eq.0, &eq.1] {
            for sub in p.subpaths() {
                if matches!(sub, Path::Get(_, _)) {
                    obligations.push((sub.clone(), q.from.len(), false, false));
                }
            }
        }
    }

    for (lookup, scope, with_conditions, fatal) in obligations {
        if !checked.insert(lookup.clone()) {
            continue;
        }
        let (m, k) = match &lookup {
            Path::Get(m, k) => (m.as_ref().clone(), k.as_ref().clone()),
            _ => unreachable!(),
        };
        // Syntactic guard: a dom binding in scope whose variable equals
        // the key under the query's conditions. Without assumable
        // conditions we only accept a literally identical key.
        let in_scope = &q.from[..scope];
        let mut guarded = false;
        for b in in_scope {
            if b.src != Path::Dom(Box::new(m.clone())) {
                continue;
            }
            if Path::Var(b.var.clone()) == k {
                guarded = true;
                break;
            }
            if with_conditions {
                let g = guard_graph.get_or_insert_with(|| QueryGraph::of_query(q));
                if g.egraph.paths_equal(&Path::Var(b.var.clone()), &k) {
                    guarded = true;
                    break;
                }
            }
        }
        if guarded {
            continue;
        }
        // Semantic safety: deps ⊨ forall(scope) [premise] ->
        // exists (g in dom(m)) g = k. An empty scope can never be safe
        // (the lookup would have to succeed on every instance).
        let safe = if in_scope.is_empty() {
            false
        } else {
            let mut gen = VarGen::avoiding(q.from.iter().map(|b| b.var.clone()));
            let g = gen.fresh("g");
            let premise = if with_conditions {
                q.where_.clone()
            } else {
                Vec::new()
            };
            let sigma = Dependency::new(
                "lookup-safety",
                in_scope.to_vec(),
                premise,
                vec![Binding::iter(g.clone(), Path::Dom(Box::new(m.clone())))],
                vec![Equality(Path::Var(g), k.clone())],
            );
            prover.implies(&sigma)
        };
        if !safe {
            return Some((lookup, fatal));
        }
    }
    None
}

/// An *anytime* budget for a lattice search ([`PlanSearch`] and the
/// parallel [`ParallelPlanSearch`](crate::ParallelPlanSearch)): the walk
/// stops the moment either limit is reached and keeps everything found so
/// far. Every node a search has streamed is a fully equivalence-verified
/// plan, so expiry only trims how much of the plan space was explored —
/// a latency SLO, never a correctness change. The root of the lattice
/// (the universal plan itself) is always visited before a budget is
/// consulted, so even `nodes: Some(0)` yields one sound plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchBudget {
    /// Stop after this much wall-clock time in the search loop.
    pub wall_clock: Option<Duration>,
    /// Stop after this many visited (equivalence-verified) nodes beyond
    /// the root.
    pub nodes: Option<usize>,
}

impl SearchBudget {
    /// A budget with neither limit set (the default): never expires.
    pub fn unlimited() -> SearchBudget {
        SearchBudget::default()
    }

    /// True if neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.nodes.is_none()
    }

    /// Has the budget run out, `visited` nodes after `start`? The caller
    /// guarantees `visited >= 1` (the root is exempt).
    pub(crate) fn expired(&self, start: Instant, visited: usize) -> bool {
        self.nodes.is_some_and(|n| visited >= n)
            || self.wall_clock.is_some_and(|d| start.elapsed() >= d)
    }
}

/// What a [`PlanSearch`] visitor tells the driver about one
/// equivalence-verified lattice node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Visit {
    /// Examine the node's children — the exhaustive behaviour.
    #[default]
    Explore,
    /// Skip this node: neither cost nor descend below it. Sound for
    /// *search* whenever the visitor knows the node and its descendants
    /// cannot be of interest (e.g. an admissible cost lower bound already
    /// exceeds the incumbent best); the node's minimality then remains
    /// undetermined, so it is not reported as a normal form.
    Prune,
    /// Stop the whole search, keeping everything found so far.
    Accept,
}

/// A caller-supplied steering policy for [`PlanSearch`]: which verified
/// nodes to expand ([`SearchVisitor::visit`]), which candidates are worth
/// verifying at all ([`SearchVisitor::admit`]), and in what order the
/// frontier is explored ([`SearchVisitor::priority`]). The defaults
/// reproduce the exhaustive breadth-first enumeration exactly.
pub trait SearchVisitor {
    /// Called once per equivalence-verified node, in exploration order
    /// (the search root first). The node is a sound plan; the verdict
    /// steers the search. The [`ChaseContext`] is handed back so the
    /// visitor can run its own memoized proofs (e.g. condition pruning
    /// while costing a plan).
    fn visit(&mut self, _ctx: &mut ChaseContext, _q: &Query, _removed: &BTreeSet<String>) -> Visit {
        Visit::Explore
    }

    /// A cheap gate on each candidate subquery *before* the expensive
    /// equivalence verification; returning `false` skips the candidate
    /// (it is never verified, visited or costed) and counts it as
    /// pruned. A branch-and-bound caller returns `false` when an
    /// admissible lower bound for the candidate (and hence, by
    /// monotonicity, for its whole sublattice) already exceeds its
    /// incumbent. Default: admit everything.
    fn admit(&mut self, _q: &Query, _removed: &BTreeSet<String>) -> bool {
        true
    }

    /// Exploration priority of a verified node — lower pops first, ties
    /// pop in discovery order. The default (a constant) makes the search
    /// breadth-first; a cost-guided caller returns a cost estimate so
    /// cheap regions are explored first and the incumbent drops early.
    fn priority(&mut self, _q: &Query, _removed: &BTreeSet<String>) -> f64 {
        0.0
    }
}

/// The always-explore visitor: exhaustive breadth-first enumeration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreAll;

impl SearchVisitor for ExploreAll {}

/// Outcome of a [`PlanSearch`] run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Nodes that were explored, had no valid child and no gated
    /// candidate child: minimal plans. With a pruning visitor this is a
    /// subset of the true normal forms — anything touched by pruning is
    /// never claimed minimal.
    pub normal_forms: Vec<Query>,
    /// Every equivalence-verified node streamed to the visitor, in visit
    /// order (the input `u` first). Each is a sound plan. Empty when the
    /// run opted out via [`PlanSearch::with_collect_visited`] — use
    /// `visited_count` then.
    pub visited: Vec<Query>,
    /// Number of nodes streamed to the visitor (equals `visited.len()`
    /// unless collection was disabled).
    pub visited_count: usize,
    /// False if `max_visited` was hit.
    pub complete: bool,
    /// Verified nodes the visitor pruned at [`SearchVisitor::visit`].
    pub pruned_at_visit: usize,
    /// Candidate subqueries skipped by [`SearchVisitor::admit`] before
    /// any verification work was spent on them.
    pub pruned_at_gate: usize,
    /// True if the visitor ended the search with [`Visit::Accept`].
    pub accepted: bool,
    /// True if a [`SearchBudget`] limit expired mid-search (the outcome
    /// still carries every verified plan found up to that point).
    pub budget_expired: bool,
    /// Workers that died to a panic mid-search and were recovered by
    /// abandoning their claims (parallel walk only; always 0 here). The
    /// surviving workers re-claim and finish, so a non-zero count with
    /// `complete == true` still carries the full search result.
    pub workers_died: usize,
}

impl SearchOutcome {
    /// Total sublattices cut by the visitor (gate + visit).
    pub fn pruned(&self) -> usize {
        self.pruned_at_visit + self.pruned_at_gate
    }
}

/// A frontier entry ordered by (priority, discovery sequence) — a
/// min-heap pop order that degrades to exactly the old FIFO walk when
/// every priority is equal. Shared with the parallel search, whose
/// workers pull from one heap of these behind a lock.
pub(crate) struct Frontier {
    pub(crate) prio: f64,
    pub(crate) seq: usize,
    pub(crate) removed: BTreeSet<String>,
    pub(crate) query: Query,
    pub(crate) hom: Assignment,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the lowest
        // (priority, seq) first.
        other
            .prio
            .total_cmp(&self.prio)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The backchase lattice walk as a streaming driver (Theorem 2's complete
/// enumeration, inverted): instead of materializing every equivalent
/// subquery up front, each equivalence-verified node is handed to a
/// caller-supplied visitor *as it is reached*, and the visitor steers the
/// search — [`Visit::Explore`] descends (exhaustive enumeration),
/// [`Visit::Prune`] cuts the node's sublattice (branch-and-bound: the
/// optimizer's cost-guided strategy carries its incumbent best cost into
/// the visitor and prunes branches whose admissible lower bound already
/// exceeds it), [`Visit::Accept`] stops the search (anytime planning —
/// every visited subquery is a sound plan, "we can stop this rewriting
/// anytime").
///
/// The walk itself is the one [`backchase_in`] always performed: one
/// lattice-wide `QueryGraph`, dependent-closure removal sets, equivalence
/// pruning of sublattices under non-equivalent subqueries, child
/// containment checks seeded from the parent's witness homomorphism, all
/// through the shared [`ChaseContext`] memos. The visitor receives the
/// context back (mutably) so it can run its own memoized proofs — e.g.
/// condition pruning — while costing a node.
#[derive(Debug, Clone)]
pub struct PlanSearch<'a> {
    u: &'a Query,
    max_visited: usize,
    collect_visited: bool,
    budget: SearchBudget,
}

impl<'a> PlanSearch<'a> {
    /// A search over the subquery lattice of `u`, which should already be
    /// chased (Algorithm 1 passes the universal plan), so equivalence to
    /// `u` is equivalence to the original query. Unlimited by default.
    pub fn new(u: &'a Query) -> PlanSearch<'a> {
        PlanSearch {
            u,
            max_visited: 0,
            collect_visited: true,
            budget: SearchBudget::default(),
        }
    }

    /// Bounds the number of visited nodes (0 = unlimited).
    pub fn with_max_visited(mut self, max_visited: usize) -> PlanSearch<'a> {
        self.max_visited = max_visited;
        self
    }

    /// Sets an anytime [`SearchBudget`]; on expiry the walk stops and
    /// keeps everything verified so far (the root is always visited
    /// first, so at least one sound plan survives any budget).
    pub fn with_budget(mut self, budget: SearchBudget) -> PlanSearch<'a> {
        self.budget = budget;
        self
    }

    /// Disables cloning each visited node into `SearchOutcome::visited`.
    /// A streaming visitor already receives every node as it is reached,
    /// so a caller that accumulates its own results (like the cost-guided
    /// strategy) only needs `visited_count`.
    pub fn with_collect_visited(mut self, collect: bool) -> PlanSearch<'a> {
        self.collect_visited = collect;
        self
    }

    /// Runs the search, streaming each equivalence-verified subquery (and
    /// its removal set over `u`) to `visitor`.
    pub fn run(&self, ctx: &mut ChaseContext, visitor: &mut dyn SearchVisitor) -> SearchOutcome {
        /// What became of a removal set that was examined via some route.
        #[derive(Clone, Copy, PartialEq)]
        enum ChildState {
            /// A verified equivalent subquery (enqueued once).
            Valid,
            /// Not a subquery / unsafe / not equivalent.
            Invalid,
            /// Skipped by the visitor's gate before verification.
            Gated,
        }
        let u = self.u;
        // The lattice-construction graph (dependent closures,
        // re-expression, implied conditions) and the homomorphism graph
        // for `u ⊑ q'` checks. They are kept separate because hom
        // searches intern candidate paths wholesale, and
        // `implied_conditions` must only see paths that come from `u`
        // itself.
        let mut graph = QueryGraph::of_query(u);
        let mut hom_graph = graph.clone();
        let identity: Assignment = u
            .from
            .iter()
            .map(|b| (b.var.clone(), Path::Var(b.var.clone())))
            .collect();
        let mut seen: std::collections::BTreeMap<BTreeSet<String>, ChildState> =
            std::collections::BTreeMap::new();
        let mut queue: BinaryHeap<Frontier> = BinaryHeap::new();
        let mut seq = 0usize;
        seen.insert(BTreeSet::new(), ChildState::Valid);
        queue.push(Frontier {
            prio: visitor.priority(u, &BTreeSet::new()),
            seq,
            removed: BTreeSet::new(),
            query: u.clone(),
            hom: identity,
        });
        let start = Instant::now();
        let mut normal_forms: Vec<Query> = Vec::new();
        let mut visited: Vec<Query> = Vec::new();
        let mut visited_count = 0usize;
        let mut complete = true;
        let mut pruned_at_visit = 0usize;
        let mut pruned_at_gate = 0usize;
        let mut accepted = false;
        let mut budget_expired = false;
        while let Some(Frontier {
            removed,
            query: q,
            hom,
            ..
        }) = queue.pop()
        {
            if self.max_visited > 0 && visited_count >= self.max_visited {
                complete = false;
                break;
            }
            // The root (visited_count == 0) is exempt: any budget still
            // yields at least one verified plan.
            if visited_count > 0 && self.budget.expired(start, visited_count) {
                complete = false;
                budget_expired = true;
                break;
            }
            match visitor.visit(ctx, &q, &removed) {
                Visit::Explore => {
                    visited_count += 1;
                    if self.collect_visited {
                        visited.push(q.clone());
                    }
                }
                Visit::Prune => {
                    // Neither costed nor descended: the node does not
                    // count as visited.
                    pruned_at_visit += 1;
                    continue;
                }
                Visit::Accept => {
                    visited_count += 1;
                    if self.collect_visited {
                        visited.push(q.clone());
                    }
                    accepted = true;
                    break;
                }
            }
            let mut reduced = false;
            let mut any_gated = false;
            for b in &u.from {
                if removed.contains(&b.var) {
                    continue;
                }
                let mut grown = removed.clone();
                grown.insert(b.var.clone());
                let grown = dependent_closure(u, &mut graph, grown);
                if let Some(&state) = seen.get(&grown) {
                    // Already examined via another route; a valid child
                    // still means this node is not a normal form, a gated
                    // one leaves its minimality undetermined.
                    reduced |= state == ChildState::Valid;
                    any_gated |= state == ChildState::Gated;
                    continue;
                }
                let mut gated = false;
                let child = subquery_for(u, &mut graph, &grown)
                    .and_then(|q2| prune_unsafe_conditions(ctx, &q2))
                    .and_then(|q2| {
                        // Branch-and-bound gate: skip the expensive
                        // equivalence verification when the visitor
                        // already knows the candidate's sublattice cannot
                        // matter.
                        if !visitor.admit(&q2, &grown) {
                            gated = true;
                            return None;
                        }
                        // u ⊑ q2: containment mapping from q2 into u
                        // itself (u is already chased, so no re-chase is
                        // needed). The parent's witness restricted to the
                        // surviving variables is almost always already
                        // one; validate it before searching.
                        let seed: Assignment = hom
                            .iter()
                            .filter(|&(v, _)| q2.from.iter().any(|b2| b2.var == *v))
                            .map(|(v, p)| (v.clone(), p.clone()))
                            .collect();
                        let h2 = output_matching_hom(
                            &mut hom_graph,
                            &u.output,
                            &q2,
                            ctx.cfg(),
                            Some(&seed),
                        )?;
                        if h2 == seed {
                            ctx.note_seeded_hom();
                        }
                        // …and q2 ⊑ u: chase q2 (lazily, memoized), map
                        // u in.
                        if ctx.contained_in(&q2, u) {
                            Some((q2, h2))
                        } else {
                            None
                        }
                    });
                let state = match (&child, gated) {
                    (Some(_), _) => ChildState::Valid,
                    (None, true) => ChildState::Gated,
                    (None, false) => ChildState::Invalid,
                };
                if gated {
                    pruned_at_gate += 1;
                    any_gated = true;
                }
                seen.insert(grown.clone(), state);
                if let Some((q2, h2)) = child {
                    reduced = true;
                    seq += 1;
                    queue.push(Frontier {
                        prio: visitor.priority(&q2, &grown),
                        seq,
                        removed: grown,
                        query: q2,
                        hom: h2,
                    });
                }
            }
            if !reduced && !any_gated {
                normal_forms.push(q);
            }
        }
        SearchOutcome {
            normal_forms,
            visited,
            visited_count,
            complete,
            pruned_at_visit,
            pruned_at_gate,
            accepted,
            budget_expired,
            workers_died: 0,
        }
    }
}

/// Enumerates all minimal equivalent subqueries of `u` (Theorem 2), by
/// descending the lattice of removal sets over `u`'s canonical database
/// with equivalence pruning ("whenever a subquery of chase(Q) is not
/// equivalent to the latter, neither are its subqueries"). `u` should
/// already be chased (Algorithm 1 passes the universal plan), so
/// equivalence to `u` is equivalence to the original query.
pub fn backchase(u: &Query, deps: &[Dependency], cfg: &BackchaseConfig) -> BackchaseOutcome {
    let mut ctx = ChaseContext::new(deps.to_vec(), cfg.chase.clone());
    backchase_in(&mut ctx, u, cfg.max_visited)
}

/// [`backchase`] against a shared [`ChaseContext`]: the collect-everything
/// instantiation of [`PlanSearch`] — a visitor that always explores, with
/// the streamed nodes and normal forms gathered into a
/// [`BackchaseOutcome`].
pub fn backchase_in(ctx: &mut ChaseContext, u: &Query, max_visited: usize) -> BackchaseOutcome {
    let out = PlanSearch::new(u)
        .with_max_visited(max_visited)
        .run(ctx, &mut ExploreAll);
    BackchaseOutcome {
        normal_forms: out.normal_forms,
        visited: out.visited,
        complete: out.complete,
    }
}

/// The paper's §3 heuristic strategy: "the obvious strategy for the
/// optimizer is to attempt to remove whatever is in the logical schema
/// but not in the physical schema". A single greedy descent: at each
/// query, try removals in priority order (bindings whose sources mention
/// `prefer_removing` roots first), follow the first valid one, stop at a
/// normal form. Linear in the number of bindings (each step runs the
/// equivalence checks once per candidate), against the exhaustive
/// enumeration's exponential lattice — the E13 ablation measures the
/// plan-quality price.
pub fn backchase_greedy(
    u: &Query,
    deps: &[Dependency],
    prefer_removing: &BTreeSet<String>,
    cfg: &ChaseConfig,
) -> Query {
    let mut ctx = ChaseContext::new(deps.to_vec(), cfg.clone());
    backchase_greedy_in(&mut ctx, u, prefer_removing)
}

/// [`backchase_greedy`] against a shared [`ChaseContext`].
pub fn backchase_greedy_in(
    ctx: &mut ChaseContext,
    u: &Query,
    prefer_removing: &BTreeSet<String>,
) -> Query {
    let mut graph = QueryGraph::of_query(u);
    let mut hom_graph = graph.clone();
    let mut removed: BTreeSet<String> = BTreeSet::new();
    // The equivalence check for a candidate removal: the identity over
    // the surviving variables always witnesses u ⊑ q2 (see the
    // enumeration), so only validate it, then test q2 ⊑ u memoized.
    let valid = |ctx: &mut ChaseContext, hom_graph: &mut QueryGraph, q2: &Query| -> bool {
        let seed: Assignment = q2
            .from
            .iter()
            .map(|b| (b.var.clone(), Path::Var(b.var.clone())))
            .collect();
        output_matching_hom(hom_graph, &u.output, q2, ctx.cfg(), Some(&seed)).is_some()
            && ctx.contained_in(q2, u)
    };
    // First move, per the paper: attempt to drop *everything* over the
    // preferred (logical-only) roots in one step — redundant logical
    // bindings usually justify each other, so they must go together.
    if !prefer_removing.is_empty() {
        let seed: BTreeSet<String> = u
            .from
            .iter()
            .filter(|b| b.src.roots().iter().any(|r| prefer_removing.contains(r)))
            .map(|b| b.var.clone())
            .collect();
        if !seed.is_empty() {
            let grown = dependent_closure(u, &mut graph, seed);
            if let Some(q2) =
                subquery_for(u, &mut graph, &grown).and_then(|q2| prune_unsafe_conditions(ctx, &q2))
            {
                if valid(ctx, &mut hom_graph, &q2) {
                    removed = grown;
                }
            }
        }
    }
    loop {
        // Candidate seeds, preferred (logical-only) bindings first, in
        // binding order within each class.
        let mut candidates: Vec<&Binding> = u
            .from
            .iter()
            .filter(|b| !removed.contains(&b.var))
            .collect();
        candidates.sort_by_key(|b| {
            let preferred = b.src.roots().iter().any(|r| prefer_removing.contains(r));
            (!preferred, u.from.iter().position(|x| x.var == b.var))
        });
        let mut advanced = false;
        for b in candidates {
            let mut grown = removed.clone();
            grown.insert(b.var.clone());
            let grown = dependent_closure(u, &mut graph, grown);
            let Some(q2) = subquery_for(u, &mut graph, &grown)
                .and_then(|q2| prune_unsafe_conditions(ctx, &q2))
            else {
                continue;
            };
            if valid(ctx, &mut hom_graph, &q2) {
                removed = grown;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return subquery_for(u, &mut graph, &removed)
                .and_then(|q2| prune_unsafe_conditions(ctx, &q2))
                .unwrap_or_else(|| u.clone());
        }
    }
}

/// Why a removal set is (or is not) a valid equivalent subquery of `u` —
/// the per-candidate judgement the enumeration makes, exposed for
/// diagnostics and EXPLAIN output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemovalJudgement {
    /// The subquery is a valid equivalent plan.
    Valid(Query),
    /// A surviving binding or the output cannot be re-expressed.
    NotASubquery,
    /// A failing lookup would not be well-defined.
    UnsafeLookup(Query),
    /// The subquery is not equivalent to `u`.
    NotEquivalent(Query),
}

/// Judges one removal set against `u` (which should be chased).
pub fn examine_removal(
    u: &Query,
    deps: &[Dependency],
    removed: &BTreeSet<String>,
    cfg: &ChaseConfig,
) -> RemovalJudgement {
    let mut ctx = ChaseContext::new(deps.to_vec(), cfg.clone());
    let mut graph = QueryGraph::of_query(u);
    examine_removal_in(&mut ctx, u, &mut graph, removed)
}

/// [`examine_removal`] against a shared [`ChaseContext`] and a caller-held
/// `graph` (the canonical database of `u`), so judging many removal sets
/// — the E9 brute-force sweep judges all `2^n` — does not rebuild the
/// graph per call.
pub fn examine_removal_in(
    ctx: &mut ChaseContext,
    u: &Query,
    graph: &mut QueryGraph,
    removed: &BTreeSet<String>,
) -> RemovalJudgement {
    let removed = dependent_closure(u, graph, removed.clone());
    let Some(q2) = subquery_for(u, graph, &removed) else {
        return RemovalJudgement::NotASubquery;
    };
    let Some(q2) = prune_unsafe_conditions(ctx, &q2) else {
        return RemovalJudgement::UnsafeLookup(q2);
    };
    if !contained_in_pre_chased(graph, &u.output, &q2, ctx.cfg()) || !ctx.contained_in(&q2, u) {
        return RemovalJudgement::NotEquivalent(q2);
    }
    RemovalJudgement::Valid(q2)
}

/// Is `q` minimal (no equivalent, well-defined subquery below it)?
pub fn is_minimal(q: &Query, deps: &[Dependency], cfg: &ChaseConfig) -> bool {
    let mut ctx = ChaseContext::new(deps.to_vec(), cfg.clone());
    is_minimal_in(&mut ctx, q)
}

/// [`is_minimal`] against a shared [`ChaseContext`]. The canonical
/// database of `q` is built once, not once per binding, and the
/// equivalence checks share the context's chase memo (`q` itself is
/// chased at most once across all bindings).
pub fn is_minimal_in(ctx: &mut ChaseContext, q: &Query) -> bool {
    let mut graph = QueryGraph::of_query(q);
    q.from.iter().all(|b| {
        let removed = dependent_closure(q, &mut graph, [b.var.clone()].into());
        match subquery_for(q, &mut graph, &removed).and_then(|q2| prune_unsafe_conditions(ctx, &q2))
        {
            None => true,
            Some(q2) => !ctx.equivalent(&q2, q),
        }
    })
}

/// Generalized tableau minimization: backchase with no constraints
/// ("chasing with trivial, always true, constraints"). Returns the
/// smallest normal form.
pub fn minimize(q: &Query, cfg: &BackchaseConfig) -> Query {
    let out = backchase(q, &[], cfg);
    out.normal_forms
        .into_iter()
        .min_by(|a, b| {
            (a.from.len(), a.size(), a.alpha_normalized()).cmp(&(
                b.from.len(),
                b.size(),
                b.alpha_normalized(),
            ))
        })
        .unwrap_or_else(|| q.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase;
    use pcql::parser::{parse_dependency, parse_query};

    fn bcfg() -> BackchaseConfig {
        BackchaseConfig::default()
    }

    fn ccfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn paper_tableau_minimization_example() {
        // §3: R(A,B) with a redundant third binding.
        let q = parse_query(
            "select struct(A = p.A, B = r.B) from R p, R q, R r \
             where p.B = q.A and q.B = r.B",
        )
        .unwrap();
        let m = minimize(&q, &bcfg());
        assert_eq!(m.from.len(), 2);
        let expect =
            parse_query("select struct(A = p.A, B = q.B) from R p, R q where p.B = q.A").unwrap();
        assert_eq!(m.alpha_normalized(), expect.alpha_normalized());
    }

    #[test]
    fn minimization_is_idempotent() {
        let q = parse_query(
            "select struct(A = p.A, B = r.B) from R p, R q, R r \
             where p.B = q.A and q.B = r.B",
        )
        .unwrap();
        let m1 = minimize(&q, &bcfg());
        let m2 = minimize(&m1, &bcfg());
        assert_eq!(m1.alpha_normalized(), m2.alpha_normalized());
    }

    #[test]
    fn no_step_without_justification() {
        // A plain join has no removable binding.
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        assert!(is_minimal(&q, &[], &ccfg()));
        for b in &q.from {
            assert!(backchase_step(&q, &[], &b.var, &ccfg()).is_none());
        }
    }

    #[test]
    fn ric_justifies_join_elimination() {
        // With the RIC every r has an s partner; the join with s whose
        // columns aren't used can be dropped (semantic optimization).
        let q = parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap();
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        let q2 = backchase_step(&q, std::slice::from_ref(&ric), "s", &ccfg()).expect("s removable");
        assert_eq!(q2.from.len(), 1);
        assert_eq!(q2.to_string(), "select struct(A = r.A) from R r");
        // Without the constraint the step is rejected.
        assert!(backchase_step(&q, &[], "s", &ccfg()).is_none());
        // The enumeration agrees.
        let out = backchase(&q, &[ric], &bcfg());
        assert_eq!(out.normal_forms.len(), 1);
        assert_eq!(out.normal_forms[0].from.len(), 1);
    }

    #[test]
    fn dependent_bindings_removed_together() {
        // Removing d must drag s (bound to d.DProjs) along when s can't be
        // re-expressed.
        let q = parse_query("select struct(A = p.A) from depts d, d.DProjs s, Proj p").unwrap();
        // Unconstrained, the removal is not equivalence-preserving
        // (depts or DProjs may be empty).
        assert!(backchase_step(&q, &[], "d", &ccfg()).is_none());
        // With a constraint making every Proj row belong to some dept,
        // the removal of {d, s} is justified.
        let cov = parse_dependency(
            "cov",
            "forall (p in Proj) -> exists (d in depts) (s in d.DProjs) where s = s",
        )
        .unwrap();
        let q2 = backchase_step(&q, &[cov], "d", &ccfg()).expect("d,s removable");
        assert_eq!(q2.from.len(), 1);
        assert_eq!(q2.from[0].src, Path::root("Proj"));
    }

    #[test]
    fn dependent_binding_reexpressed_instead_of_removed() {
        // d = d2, s ranges over d.DProjs; removing d re-expresses s's
        // source over d2.
        let q = parse_query("select struct(S = s) from depts d, depts d2, d.DProjs s where d = d2")
            .unwrap();
        let q2 = backchase_step(&q, &[], "d", &ccfg()).expect("d removable");
        assert_eq!(q2.from.len(), 2);
        assert!(q2
            .from
            .iter()
            .any(|b| b.src == Path::var("d2").field("DProjs")));
    }

    #[test]
    fn output_blocks_removal() {
        // q's only output comes from s; s can't be removed even though the
        // RIC would justify the existence part.
        let q = parse_query("select struct(C = s.C) from R r, S s where r.B = s.B").unwrap();
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        assert!(backchase_step(&q, std::slice::from_ref(&ric), "s", &ccfg()).is_none());
        let out = backchase(&q, &[ric], &bcfg());
        assert_eq!(out.normal_forms.len(), 1);
        assert_eq!(out.normal_forms[0].from.len(), 2);
    }

    #[test]
    fn view_rewrite_via_backchase_enumeration() {
        // The chased query contains the base join and the view; the
        // complete enumeration finds both minimal plans, including the
        // view-only plan that requires removing {r, s} jointly (which the
        // single-binding rewrite rule alone cannot justify).
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let deps = vec![
            parse_dependency(
                "c_V",
                "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
            )
            .unwrap(),
            parse_dependency(
                "c'_V",
                "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
            )
            .unwrap(),
        ];
        // The single-binding rule: v is removable, r alone is not (the
        // witness for the remaining s is lost).
        let base = backchase_step(&u, &deps, "v", &ccfg()).expect("v removable");
        assert_eq!(base.from.len(), 2);
        assert!(backchase_step(&u, &deps, "r", &ccfg()).is_none());

        // The complete enumeration still reaches the view-only plan.
        let out = backchase(&u, &deps, &bcfg());
        assert!(out.complete);
        let shapes: BTreeSet<Vec<String>> = out
            .normal_forms
            .iter()
            .map(|q| q.from.iter().map(|b| b.src.to_string()).collect())
            .collect();
        assert!(
            shapes.contains(&vec!["V".to_string()]),
            "view-only plan found: {shapes:?}"
        );
        assert!(shapes.contains(&vec!["R".to_string(), "S".to_string()]));
        assert_eq!(out.normal_forms.len(), 2);
        // The visited set contains the universal plan itself.
        assert!(out.visited.iter().any(|q| q.from.len() == 3));
    }

    #[test]
    fn unguarded_lookup_rejected_without_proof() {
        // Removing the dom guard around a constant-key lookup would leave
        // SI["CitiBank"], which may fail; the step must be rejected.
        let q = parse_query(
            r#"select struct(PN = t.PName) from dom(SI) k, SI[k] t where k = "CitiBank""#,
        )
        .unwrap();
        assert!(backchase_step(&q, &[], "k", &ccfg()).is_none());
        let out = backchase(&q, &[], &bcfg());
        assert_eq!(out.normal_forms.len(), 1);
        assert_eq!(out.normal_forms[0].from.len(), 2);
    }

    #[test]
    fn guarded_lookup_key_rewrite_allowed_with_proof() {
        // JI's PN values are always in dom(I) (via the constraints), so
        // the dom(I) binding can be removed, leaving I[j.PN] — P4's shape.
        let q = parse_query("select struct(PB = I[i].Budg) from JI j, dom(I) i where i = j.PN")
            .unwrap();
        let safety = parse_dependency(
            "ji_pn_indexed",
            "forall (j in JI) -> exists (i in dom(I)) where i = j.PN",
        )
        .unwrap();
        let q2 =
            backchase_step(&q, std::slice::from_ref(&safety), "i", &ccfg()).expect("i removable");
        assert_eq!(q2.from.len(), 1);
        assert_eq!(q2.output.paths()[0].1.to_string(), "I[j.PN].Budg");
        // Without the safety constraint the step is rejected.
        assert!(backchase_step(&q, &[], "i", &ccfg()).is_none());
        // Enumeration reaches P4's shape as the unique normal form.
        let out = backchase(&q, &[safety], &bcfg());
        assert_eq!(out.normal_forms.len(), 1);
        assert_eq!(out.normal_forms[0].from.len(), 1);
    }

    #[test]
    fn minimize_under_key_constraint() {
        // Algorithm 1 structure: chase first (the key EGD equates the two
        // sides), then backchase collapses the self-join.
        let q =
            parse_query("select struct(A = p.A, B = q.B) from R p, R q where p.K = q.K").unwrap();
        let key =
            parse_dependency("key", "forall (p in R) (q in R) where p.K = q.K -> p = q").unwrap();
        let u = chase(&q, std::slice::from_ref(&key), &ccfg()).query;
        let out = backchase(&u, &[key], &bcfg());
        assert!(out.normal_forms.iter().any(|nf| nf.from.len() == 1));
    }

    #[test]
    fn greedy_descent_reaches_a_minimal_plan() {
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let deps = vec![
            parse_dependency(
                "c_V",
                "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
            )
            .unwrap(),
            parse_dependency(
                "c'_V",
                "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
            )
            .unwrap(),
        ];
        // Preferring to remove R and S (as if they were logical-only)
        // drives the descent into the view-only plan.
        let prefer: BTreeSet<String> = ["R".to_string(), "S".to_string()].into();
        let plan = backchase_greedy(&u, &deps, &prefer, &ccfg());
        assert_eq!(plan.from.len(), 1);
        assert_eq!(plan.from[0].src, Path::root("V"));
        assert!(is_minimal(&plan, &deps, &ccfg()));

        // With no preference the descent still reaches a minimal plan
        // (removing r alone is equivalence-preserving here: an empty S
        // forces an empty V, so the dangling S binding filters nothing).
        let plan2 = backchase_greedy(&u, &deps, &BTreeSet::new(), &ccfg());
        assert!(is_minimal(&plan2, &deps, &ccfg()));
        assert_eq!(plan2.from.len(), 1);
    }

    #[test]
    fn greedy_on_already_minimal_query_is_identity_shaped() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let plan = backchase_greedy(&q, &[], &BTreeSet::new(), &ccfg());
        assert_eq!(plan.from.len(), 2);
    }

    fn view_scenario() -> (Query, Vec<Dependency>) {
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let deps = vec![
            parse_dependency(
                "c_V",
                "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
            )
            .unwrap(),
            parse_dependency(
                "c'_V",
                "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
            )
            .unwrap(),
        ];
        (u, deps)
    }

    #[test]
    fn plan_search_accept_stops_the_walk() {
        struct AcceptSmall;
        impl SearchVisitor for AcceptSmall {
            fn visit(&mut self, _: &mut ChaseContext, q: &Query, _: &BTreeSet<String>) -> Visit {
                if q.from.len() <= 2 {
                    Visit::Accept
                } else {
                    Visit::Explore
                }
            }
        }
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps, ChaseConfig::default());
        let out = PlanSearch::new(&u).run(&mut ctx, &mut AcceptSmall);
        assert!(out.accepted);
        // The accepted plan is the last node visited, and the walk
        // stopped there (an exhaustive run visits more).
        assert_eq!(out.visited.last().unwrap().from.len(), 2);
        let mut ctx = ChaseContext::new(ctx.deps().to_vec(), ChaseConfig::default());
        let full = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        assert!(!full.accepted);
        assert!(out.visited.len() < full.visited.len());
    }

    #[test]
    fn plan_search_gate_cuts_candidates_before_verification() {
        // Admit nothing below the root: only the root is visited, every
        // direct candidate is counted as gate-pruned, and nothing —
        // including the root, whose minimality the gate left
        // undetermined — is claimed a normal form.
        struct RootOnly;
        impl SearchVisitor for RootOnly {
            fn admit(&mut self, _: &Query, _: &BTreeSet<String>) -> bool {
                false
            }
        }
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps, ChaseConfig::default());
        let out = PlanSearch::new(&u).run(&mut ctx, &mut RootOnly);
        assert_eq!(out.visited.len(), 1);
        assert!(out.pruned_at_gate > 0);
        assert_eq!(out.pruned(), out.pruned_at_gate);
        assert!(out.normal_forms.is_empty());
        assert!(out.complete);
    }

    #[test]
    fn plan_search_priority_orders_the_frontier() {
        // Exploring small subqueries first must still visit the same set
        // of nodes as the FIFO walk — order is a policy, coverage is not.
        struct SmallFirst;
        impl SearchVisitor for SmallFirst {
            fn priority(&mut self, q: &Query, _: &BTreeSet<String>) -> f64 {
                q.from.len() as f64
            }
        }
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let prioritized = PlanSearch::new(&u).run(&mut ctx, &mut SmallFirst);
        let mut ctx = ChaseContext::new(deps, ChaseConfig::default());
        let fifo = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        let norm = |qs: &[Query]| {
            let mut v: Vec<Query> = qs.iter().map(Query::alpha_normalized).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&prioritized.visited), norm(&fifo.visited));
        assert_eq!(norm(&prioritized.normal_forms), norm(&fifo.normal_forms));
        // The prioritized walk reaches a 1-binding plan before the FIFO
        // walk does.
        let first_small = |qs: &[Query]| qs.iter().position(|q| q.from.len() == 1).unwrap();
        assert!(first_small(&prioritized.visited) <= first_small(&fifo.visited));
    }

    #[test]
    fn visited_budget_respected() {
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let deps = vec![
            parse_dependency(
                "c_V",
                "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
            )
            .unwrap(),
            parse_dependency(
                "c'_V",
                "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
            )
            .unwrap(),
        ];
        let tight = BackchaseConfig {
            max_visited: 1,
            ..BackchaseConfig::default()
        };
        let out = backchase(&u, &deps, &tight);
        assert!(!out.complete);
    }

    #[test]
    fn anytime_node_budget_keeps_the_root() {
        let (u, deps) = view_scenario();
        // nodes = 0: the root is exempt, so exactly the universal plan
        // itself is visited and the expiry is reported.
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let out = PlanSearch::new(&u)
            .with_budget(SearchBudget {
                nodes: Some(0),
                ..SearchBudget::default()
            })
            .run(&mut ctx, &mut ExploreAll);
        assert!(out.budget_expired);
        assert!(!out.complete);
        assert_eq!(out.visited.len(), 1);
        assert_eq!(out.visited[0].alpha_normalized(), u.alpha_normalized());
        // A zero wall-clock budget behaves the same way.
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let out = PlanSearch::new(&u)
            .with_budget(SearchBudget {
                wall_clock: Some(Duration::ZERO),
                ..SearchBudget::default()
            })
            .run(&mut ctx, &mut ExploreAll);
        assert!(out.budget_expired);
        assert_eq!(out.visited.len(), 1);
        // An unlimited budget changes nothing and reports no expiry.
        let mut ctx = ChaseContext::new(deps, ChaseConfig::default());
        let out = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        assert!(!out.budget_expired);
        assert!(out.complete);
    }

    #[test]
    fn anytime_node_budget_truncates_mid_search() {
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let full = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        assert!(full.visited.len() > 2);
        let mut ctx = ChaseContext::new(deps, ChaseConfig::default());
        let out = PlanSearch::new(&u)
            .with_budget(SearchBudget {
                nodes: Some(2),
                ..SearchBudget::default()
            })
            .run(&mut ctx, &mut ExploreAll);
        assert!(out.budget_expired);
        assert_eq!(out.visited.len(), 2);
        // Everything kept is a verified plan from the full walk's set.
        let norm =
            |qs: &[Query]| -> BTreeSet<Query> { qs.iter().map(Query::alpha_normalized).collect() };
        assert!(norm(&out.visited).is_subset(&norm(&full.visited)));
    }
}
