//! A small e-graph: hash-consed path terms, union-find with congruence
//! closure, and cheapest-term extraction.
//!
//! This single structure backs all of the chase machinery:
//!
//! * **chase applicability** — is an equality already implied?
//! * **backchase subqueries** — re-express bindings/outputs avoiding the
//!   removed variables, and compute the maximal implied condition set
//!   `C'` (paper §3, "build a database instance out of the syntax of Q,
//!   grouping terms in congruence classes according to the equalities
//!   that appear in C");
//! * **containment mappings** — compare images of paths up to the
//!   where-clause congruence.
//!
//! Sizes are tiny (a universal plan has tens of terms), so we favour a
//! simple rebuild-to-fixpoint implementation over incremental congruence
//! maintenance.

use std::collections::{BTreeMap, BTreeSet};

use pcql::path::{Constant, Path};

/// Identifier of an e-class (canonical node id).
pub type ClassId = usize;

/// Node id (index into the node table).
pub type NodeId = usize;

/// A hash-consed path constructor whose children are e-class ids.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ENode {
    Var(String),
    Const(Constant),
    Root(String),
    Field(ClassId, String),
    Dom(ClassId),
    Get(ClassId, ClassId),
    GetOrEmpty(ClassId, ClassId),
}

impl ENode {
    fn children(&self) -> Vec<ClassId> {
        match self {
            ENode::Var(_) | ENode::Const(_) | ENode::Root(_) => vec![],
            ENode::Field(c, _) | ENode::Dom(c) => vec![*c],
            ENode::Get(a, b) | ENode::GetOrEmpty(a, b) => vec![*a, *b],
        }
    }

    fn map_children(&self, mut f: impl FnMut(ClassId) -> ClassId) -> ENode {
        match self {
            ENode::Var(_) | ENode::Const(_) | ENode::Root(_) => self.clone(),
            ENode::Field(c, a) => ENode::Field(f(*c), a.clone()),
            ENode::Dom(c) => ENode::Dom(f(*c)),
            ENode::Get(a, b) => ENode::Get(f(*a), f(*b)),
            ENode::GetOrEmpty(a, b) => ENode::GetOrEmpty(f(*a), f(*b)),
        }
    }
}

/// The e-graph.
#[derive(Debug, Clone, Default)]
pub struct EGraph {
    /// Union-find parents over node ids (class id = canonical node id).
    parent: Vec<NodeId>,
    /// Node table; children ids may become stale after unions and are
    /// canonicalized on read.
    nodes: Vec<ENode>,
    /// Canonical enode -> node id memo.
    memo: BTreeMap<ENode, NodeId>,
}

impl EGraph {
    pub fn new() -> EGraph {
        EGraph::default()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Canonical class of a node id.
    pub fn find(&self, mut x: NodeId) -> ClassId {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn find_compress(&mut self, mut x: NodeId) -> ClassId {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn canonicalize(&self, node: &ENode) -> ENode {
        node.map_children(|c| self.find(c))
    }

    /// Interns an enode (children must already be canonical ids).
    fn add_node(&mut self, node: ENode) -> ClassId {
        let node = self.canonicalize(&node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find(id);
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.parent.push(id);
        self.memo.insert(node, id);
        id
    }

    /// Interns a whole path, returning its e-class.
    pub fn add_path(&mut self, p: &Path) -> ClassId {
        match p {
            Path::Var(v) => self.add_node(ENode::Var(v.clone())),
            Path::Const(c) => self.add_node(ENode::Const(c.clone())),
            Path::Root(r) => self.add_node(ENode::Root(r.clone())),
            Path::Field(q, a) => {
                let c = self.add_path(q);
                self.add_node(ENode::Field(c, a.clone()))
            }
            Path::Dom(q) => {
                let c = self.add_path(q);
                self.add_node(ENode::Dom(c))
            }
            Path::Get(m, k) => {
                let cm = self.add_path(m);
                let ck = self.add_path(k);
                self.add_node(ENode::Get(cm, ck))
            }
            Path::GetOrEmpty(m, k) => {
                let cm = self.add_path(m);
                let ck = self.add_path(k);
                self.add_node(ENode::GetOrEmpty(cm, ck))
            }
        }
    }

    /// Merges the classes of two node ids and restores congruence.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> bool {
        let (ra, rb) = (self.find_compress(a), self.find_compress(b));
        if ra == rb {
            return false;
        }
        // Keep the smaller id as canonical for determinism.
        let (keep, kill) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[kill] = keep;
        self.rebuild();
        true
    }

    /// Restores the congruence invariant by re-canonicalizing every node
    /// and merging duplicates, to fixpoint.
    fn rebuild(&mut self) {
        loop {
            let mut pending: Vec<(NodeId, NodeId)> = Vec::new();
            let mut memo: BTreeMap<ENode, NodeId> = BTreeMap::new();
            for id in 0..self.nodes.len() {
                let canon = self.canonicalize(&self.nodes[id].clone());
                match memo.get(&canon) {
                    Some(&other) if self.find(other) != self.find(id) => {
                        pending.push((other, id));
                    }
                    Some(_) => {}
                    None => {
                        memo.insert(canon, id);
                    }
                }
            }
            if pending.is_empty() {
                self.memo = memo;
                return;
            }
            for (a, b) in pending {
                let (ra, rb) = (self.find_compress(a), self.find_compress(b));
                if ra != rb {
                    let (keep, kill) = if ra < rb { (ra, rb) } else { (rb, ra) };
                    self.parent[kill] = keep;
                }
            }
        }
    }

    /// Interns both paths and unions their classes.
    pub fn union_paths(&mut self, a: &Path, b: &Path) -> bool {
        let ca = self.add_path(a);
        let cb = self.add_path(b);
        self.union(ca, cb)
    }

    /// Are two paths congruent under the recorded equalities?
    /// (Interns them as a side effect.)
    pub fn paths_equal(&mut self, a: &Path, b: &Path) -> bool {
        let ca = self.add_path(a);
        let cb = self.add_path(b);
        self.find(ca) == self.find(cb)
    }

    /// All node ids of a class.
    pub fn class_nodes(&self, class: ClassId) -> Vec<NodeId> {
        let class = self.find(class);
        (0..self.nodes.len())
            .filter(|&id| self.find(id) == class)
            .collect()
    }

    /// All distinct canonical classes.
    pub fn classes(&self) -> BTreeSet<ClassId> {
        (0..self.nodes.len()).map(|id| self.find(id)).collect()
    }

    /// The constant of a class, if it contains one.
    pub fn class_constant(&self, class: ClassId) -> Option<&Constant> {
        let class = self.find(class);
        self.nodes.iter().enumerate().find_map(|(id, n)| match n {
            ENode::Const(c) if self.find(id) == class => Some(c),
            _ => None,
        })
    }

    /// Per-class cheapest extraction avoiding the forbidden variables.
    /// Entry `i` (for canonical class ids) holds `(cost, node)` of the
    /// best realizable node, or `None` if every term of the class
    /// mentions a forbidden variable.
    fn extraction_table(&self, forbidden: &BTreeSet<String>) -> Vec<Option<(usize, NodeId)>> {
        let mut best: Vec<Option<(usize, NodeId)>> = vec![None; self.nodes.len()];
        loop {
            let mut changed = false;
            for (id, node) in self.nodes.iter().enumerate() {
                if let ENode::Var(v) = node {
                    if forbidden.contains(v) {
                        continue;
                    }
                }
                let mut cost = 1usize;
                let mut ok = true;
                for child in node.children() {
                    match best[self.find(child)] {
                        Some((c, _)) => cost += c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let class = self.find(id);
                if best[class].is_none_or(|(c, n)| cost < c || (cost == c && id < n)) {
                    best[class] = Some((cost, id));
                    changed = true;
                }
            }
            if !changed {
                return best;
            }
        }
    }

    /// Canonical representative per class: minimum cost, ties broken by
    /// the structural order of the realized paths (so the result is
    /// independent of insertion order). Classes are finalized in
    /// increasing cost order, so children are canonical before parents.
    fn canonical_reprs(&self, forbidden: &BTreeSet<String>) -> BTreeMap<ClassId, Path> {
        let table = self.extraction_table(forbidden);
        let mut order: Vec<(usize, ClassId)> = table
            .iter()
            .enumerate()
            .filter_map(|(class, entry)| entry.map(|(cost, _)| (cost, class)))
            .collect();
        order.sort_unstable();
        let mut reprs: BTreeMap<ClassId, Path> = BTreeMap::new();
        for (cost, class) in order {
            let mut best: Option<Path> = None;
            for (id, node) in self.nodes.iter().enumerate() {
                if self.find(id) != class {
                    continue;
                }
                let Some(path) = self.realize_node(node, &table, &reprs, forbidden) else {
                    continue;
                };
                if path.size() != cost {
                    continue;
                }
                if best.as_ref().is_none_or(|b| path < *b) {
                    best = Some(path);
                }
            }
            if let Some(p) = best {
                reprs.insert(class, p);
            }
        }
        reprs
    }

    /// Realizes one node using the canonical child representatives;
    /// `None` if a child is unrealizable or the node's own variable is
    /// forbidden.
    fn realize_node(
        &self,
        node: &ENode,
        table: &[Option<(usize, NodeId)>],
        reprs: &BTreeMap<ClassId, Path>,
        forbidden: &BTreeSet<String>,
    ) -> Option<Path> {
        let child = |c: ClassId| -> Option<Path> {
            let class = self.find(c);
            // When finalizing in cost order, strictly cheaper children are
            // already canonical; fall back to the table otherwise.
            reprs.get(&class).cloned().or_else(|| {
                let (_, n) = table[class]?;
                self.realize_node(&self.nodes[n].clone(), table, reprs, forbidden)
            })
        };
        match node {
            ENode::Var(v) => {
                if forbidden.contains(v) {
                    None
                } else {
                    Some(Path::Var(v.clone()))
                }
            }
            ENode::Const(c) => Some(Path::Const(c.clone())),
            ENode::Root(r) => Some(Path::Root(r.clone())),
            ENode::Field(c, a) => Some(child(*c)?.field(a.clone())),
            ENode::Dom(c) => Some(child(*c)?.dom()),
            ENode::Get(m, k) => Some(child(*m)?.get(child(*k)?)),
            ENode::GetOrEmpty(m, k) => Some(child(*m)?.get_or_empty(child(*k)?)),
        }
    }

    /// The cheapest path of `class` that avoids all `forbidden` variables,
    /// if one exists.
    pub fn extract(&self, class: ClassId, forbidden: &BTreeSet<String>) -> Option<Path> {
        self.canonical_reprs(forbidden)
            .get(&self.find(class))
            .cloned()
    }

    /// For every class, every realizable path (one per node of the class,
    /// with canonical realizable children), avoiding `forbidden`
    /// variables. This is the ingredient of the *maximal* implied
    /// condition set `C'`.
    pub fn realizable_paths(&self, forbidden: &BTreeSet<String>) -> BTreeMap<ClassId, Vec<Path>> {
        let table = self.extraction_table(forbidden);
        let reprs = self.canonical_reprs(forbidden);
        let mut out: BTreeMap<ClassId, Vec<Path>> = BTreeMap::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let Some(path) = self.realize_node(node, &table, &reprs, forbidden) else {
                continue;
            };
            let class = self.find(id);
            let entry = out.entry(class).or_default();
            if !entry.contains(&path) {
                entry.push(path);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn none() -> BTreeSet<String> {
        BTreeSet::new()
    }

    #[test]
    fn interning_is_structural() {
        let mut g = EGraph::new();
        let a = g.add_path(&Path::var("x").field("A"));
        let b = g.add_path(&Path::var("x").field("A"));
        assert_eq!(a, b);
        let c = g.add_path(&Path::var("x").field("B"));
        assert_ne!(g.find(a), g.find(c));
    }

    #[test]
    fn union_merges_classes() {
        let mut g = EGraph::new();
        let x = g.add_path(&Path::var("x"));
        let y = g.add_path(&Path::var("y"));
        assert_ne!(g.find(x), g.find(y));
        assert!(g.union(x, y));
        assert_eq!(g.find(x), g.find(y));
        // Idempotent.
        assert!(!g.union(x, y));
    }

    #[test]
    fn congruence_propagates_through_fields() {
        let mut g = EGraph::new();
        let xa = g.add_path(&Path::var("x").field("A"));
        let ya = g.add_path(&Path::var("y").field("A"));
        assert_ne!(g.find(xa), g.find(ya));
        g.union_paths(&Path::var("x"), &Path::var("y"));
        assert_eq!(g.find(xa), g.find(ya));
        // New terms built after the union are also congruent.
        assert!(g.paths_equal(
            &Path::var("x").field("B").dom(),
            &Path::var("y").field("B").dom()
        ));
    }

    #[test]
    fn congruence_propagates_through_lookups() {
        let mut g = EGraph::new();
        // i = p.PName  =>  I[i] = I[p.PName]
        let l1 = g.add_path(&Path::root("I").get(Path::var("i")));
        let l2 = g.add_path(&Path::root("I").get(Path::var("p").field("PName")));
        assert_ne!(g.find(l1), g.find(l2));
        g.union_paths(&Path::var("i"), &Path::var("p").field("PName"));
        assert_eq!(g.find(l1), g.find(l2));
    }

    #[test]
    fn transitive_chains() {
        let mut g = EGraph::new();
        g.union_paths(&Path::var("a"), &Path::var("b"));
        g.union_paths(&Path::var("b"), &Path::var("c"));
        assert!(g.paths_equal(&Path::var("a"), &Path::var("c")));
        assert!(g.paths_equal(&Path::var("a").field("F"), &Path::var("c").field("F")));
    }

    #[test]
    fn class_constant_lookup() {
        let mut g = EGraph::new();
        let k = g.add_path(&Path::var("k"));
        assert_eq!(g.class_constant(k), None);
        g.union_paths(&Path::var("k"), &Path::str("CitiBank"));
        assert_eq!(g.class_constant(k), Some(&Constant::Str("CitiBank".into())));
    }

    #[test]
    fn extraction_picks_cheapest() {
        let mut g = EGraph::new();
        // s = p.PName: extracting s's class should pick the variable.
        let s = g.add_path(&Path::var("s"));
        g.union_paths(&Path::var("s"), &Path::var("p").field("PName"));
        assert_eq!(g.extract(s, &none()), Some(Path::var("s")));
        // Forbidding s forces the longer form.
        let fb: BTreeSet<String> = ["s".to_string()].into();
        assert_eq!(g.extract(s, &fb), Some(Path::var("p").field("PName")));
        // Forbidding both leaves nothing.
        let fb2: BTreeSet<String> = ["s".to_string(), "p".to_string()].into();
        assert_eq!(g.extract(s, &fb2), None);
    }

    #[test]
    fn extraction_reconstructs_nested_terms() {
        let mut g = EGraph::new();
        // i = j.PN and the term I[i] exists; extracting I[i]'s class while
        // forbidding i must produce I[j.PN] — the paper's P4 rewrite.
        let lookup = g.add_path(&Path::root("I").get(Path::var("i")));
        g.union_paths(&Path::var("i"), &Path::var("j").field("PN"));
        let fb: BTreeSet<String> = ["i".to_string()].into();
        assert_eq!(
            g.extract(lookup, &fb),
            Some(Path::root("I").get(Path::var("j").field("PN")))
        );
    }

    #[test]
    fn realizable_paths_enumerate_alternatives() {
        let mut g = EGraph::new();
        let s = g.add_path(&Path::var("s"));
        g.union_paths(&Path::var("s"), &Path::var("p").field("PName"));
        let reals = g.realizable_paths(&none());
        let class = g.find(s);
        let paths = &reals[&class];
        assert!(paths.contains(&Path::var("s")));
        assert!(paths.contains(&Path::var("p").field("PName")));
    }

    #[test]
    fn deep_congruence_chain() {
        let mut g = EGraph::new();
        // d = d'  =>  Dept[d].DProjs = Dept[d'].DProjs
        let a = g.add_path(&Path::root("Dept").get(Path::var("d")).field("DProjs"));
        let b = g.add_path(&Path::root("Dept").get(Path::var("dp")).field("DProjs"));
        g.union_paths(&Path::var("d"), &Path::var("dp"));
        assert_eq!(g.find(a), g.find(b));
    }

    #[test]
    fn unions_are_deterministic() {
        let mut g1 = EGraph::new();
        g1.union_paths(&Path::var("a"), &Path::var("b"));
        let mut g2 = EGraph::new();
        g2.union_paths(&Path::var("b"), &Path::var("a"));
        let a1 = g1.add_path(&Path::var("a"));
        let a2 = g2.add_path(&Path::var("a"));
        assert_eq!(g1.extract(a1, &none()), g2.extract(a2, &none()));
    }
}
