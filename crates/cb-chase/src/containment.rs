//! Containment and equivalence of PC queries under constraints.
//!
//! `Q1 ⊑ Q2` under `D` iff there is a containment mapping from `Q2` into
//! `chase_D(Q1)`: a homomorphism of `Q2`'s body with `h(O2) ≡ O1` modulo
//! the chased query's congruence. This generalizes the classical
//! Chandra–Merlin test and is the PC containment of [Popa–Tannen
//! ICDT'99], which the paper builds on.

use std::collections::BTreeMap;

use pcql::query::{Output, Query};
use pcql::Dependency;

use crate::canon::QueryGraph;
use crate::chase::ChaseConfig;
use crate::context::ChaseContext;
use crate::hom::{find_matching_hom, hom_is_valid, Assignment};

/// Is `q1 ⊑ q2` under `deps` (set semantics)?
///
/// Thin wrapper allocating a throwaway [`ChaseContext`]; callers asking
/// several containment questions of the same dependency set should hold
/// a context instead.
pub fn contained_in(q1: &Query, q2: &Query, deps: &[Dependency], cfg: &ChaseConfig) -> bool {
    ChaseContext::new(deps.to_vec(), cfg.clone()).contained_in(q1, q2)
}

/// `q1 ⊑ q2` where `graph` is the canonical database of the *already
/// chased* `q1` (with output `q1_output`). Lets callers that test many
/// candidates against one chased query (the backchase) skip re-chasing.
pub fn contained_in_pre_chased(
    graph: &QueryGraph,
    q1_output: &Output,
    q2: &Query,
    cfg: &ChaseConfig,
) -> bool {
    let mut graph = graph.clone();
    output_matching_hom(&mut graph, q1_output, q2, cfg, None).is_some()
}

/// Finds a containment mapping from `q2` into `graph` (the canonical
/// database of an already-chased query with output `q1_output`): a body
/// homomorphism whose image makes the outputs congruent.
///
/// A `seed` candidate, when given, is validated first without any search
/// — the backchase seeds a child lattice node's check from its parent's
/// witness. The hom search only interns paths (it never unions classes),
/// so one mutable graph is safely shared across many calls.
pub(crate) fn output_matching_hom(
    graph: &mut QueryGraph,
    q1_output: &Output,
    q2: &Query,
    cfg: &ChaseConfig,
    seed: Option<&Assignment>,
) -> Option<Assignment> {
    if let Some(h) = seed {
        if hom_is_valid(graph, &q2.from, &q2.where_, h)
            && outputs_match(graph, q1_output, &q2.output, h)
        {
            return Some(h.clone());
        }
    }
    find_matching_hom(
        graph,
        &q2.from,
        &q2.where_,
        &BTreeMap::new(),
        cfg.max_homs,
        &mut |g, h| outputs_match(g, q1_output, &q2.output, h),
    )
}

/// Are the queries equivalent under `deps`? (Throwaway-context wrapper;
/// the two directions at least share one context's chase memo.)
pub fn equivalent(q1: &Query, q2: &Query, deps: &[Dependency], cfg: &ChaseConfig) -> bool {
    ChaseContext::new(deps.to_vec(), cfg.clone()).equivalent(q1, q2)
}

fn outputs_match(graph: &mut QueryGraph, o1: &Output, o2: &Output, h: &Assignment) -> bool {
    match (o1, o2) {
        (Output::Struct(f1), Output::Struct(f2)) => {
            f1.len() == f2.len()
                && f1.iter().all(|(name, p1)| match f2.get(name) {
                    Some(p2) => graph.egraph.paths_equal(p1, &p2.subst(h)),
                    None => false,
                })
        }
        (Output::Path(p1), Output::Path(p2)) => graph.egraph.paths_equal(p1, &p2.subst(h)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::{parse_dependency, parse_query};

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn classical_containment() {
        // The 3-binding tableau of paper §3 is contained in (and in fact
        // equivalent to) its 2-binding minimization.
        let big = parse_query(
            "select struct(A = p.A, B = r.B) from R p, R q, R r \
             where p.B = q.A and q.B = r.B",
        )
        .unwrap();
        let small =
            parse_query("select struct(A = p.A, B = q.B) from R p, R q where p.B = q.A").unwrap();
        assert!(contained_in(&big, &small, &[], &cfg()));
        assert!(contained_in(&small, &big, &[], &cfg()));
        assert!(equivalent(&big, &small, &[], &cfg()));
    }

    #[test]
    fn strict_containment_not_equivalence() {
        let narrower = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        let wider = parse_query("select struct(A = r.A) from R r").unwrap();
        // narrower ⊑ wider but not conversely.
        assert!(contained_in(&narrower, &wider, &[], &cfg()));
        assert!(!contained_in(&wider, &narrower, &[], &cfg()));
        assert!(!equivalent(&narrower, &wider, &[], &cfg()));
    }

    #[test]
    fn containment_under_constraints() {
        // With the RIC "every r has a matching s", the join is equivalent
        // to the scan.
        let narrower = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        let wider = parse_query("select struct(A = r.A) from R r").unwrap();
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap();
        assert!(equivalent(&narrower, &wider, &[ric], &cfg()));
    }

    #[test]
    fn output_shape_must_match() {
        let q1 = parse_query("select struct(A = r.A) from R r").unwrap();
        let q2 = parse_query("select struct(B = r.A) from R r").unwrap();
        let q3 = parse_query("select r.A from R r").unwrap();
        assert!(!contained_in(&q1, &q2, &[], &cfg()));
        assert!(!contained_in(&q1, &q3, &[], &cfg()));
        assert!(contained_in(&q3, &q3, &[], &cfg()));
    }

    #[test]
    fn constants_matter() {
        let five = parse_query("select struct(C = r.C) from R r where r.A = 5").unwrap();
        let six = parse_query("select struct(C = r.C) from R r where r.A = 6").unwrap();
        assert!(contained_in(&five, &five, &[], &cfg()));
        assert!(!contained_in(&five, &six, &[], &cfg()));
        // A constant-filtered query is contained in the unfiltered one.
        let all = parse_query("select struct(C = r.C) from R r").unwrap();
        assert!(contained_in(&five, &all, &[], &cfg()));
        assert!(!contained_in(&all, &five, &[], &cfg()));
    }

    #[test]
    fn containment_is_reflexive_and_transitive() {
        let a =
            parse_query("select struct(A = r.A) from R r, S s, T t where r.A = s.A and s.A = t.A")
                .unwrap();
        let b = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        let c = parse_query("select struct(A = r.A) from R r").unwrap();
        assert!(contained_in(&a, &a, &[], &cfg()));
        assert!(contained_in(&a, &b, &[], &cfg()));
        assert!(contained_in(&b, &c, &[], &cfg()));
        assert!(contained_in(&a, &c, &[], &cfg()));
    }

    #[test]
    fn oo_path_containment() {
        let q1 =
            parse_query("select struct(S = s) from depts d, d.DProjs s, Proj p where s = p.PName")
                .unwrap();
        let q2 = parse_query("select struct(S = s) from depts d, d.DProjs s").unwrap();
        assert!(contained_in(&q1, &q2, &[], &cfg()));
        assert!(!contained_in(&q2, &q1, &[], &cfg()));
        let ric1 = parse_dependency(
            "RIC1",
            "forall (d in depts) (s in d.DProjs) -> exists (p in Proj) where s = p.PName",
        )
        .unwrap();
        assert!(contained_in(&q2, &q1, &[ric1], &cfg()));
    }
}
