//! # cb-chase — the chase & backchase engines
//!
//! The rewriting core of *Physical Data Independence, Constraints and
//! Optimization with Universal Plans* (Deutsch, Popa, Tannen; VLDB 1999):
//!
//! * [`chase`] — phase 1: rewrite a query with EPCD constraints until a
//!   fixpoint, producing the **universal plan** that "holds in one place
//!   essentially all possible physical plans expressible in our
//!   language";
//! * [`backchase`] — phase 2: enumerate the minimal plans by removing
//!   redundant bindings, each removal justified by a constraint implied
//!   by `D ∪ D'`;
//! * [`implies`] — the chase-based constraint-implication prover behind
//!   backchase condition (3);
//! * [`contained_in`] / [`equivalent`] — PC query containment under
//!   constraints (containment mappings into the chased query);
//! * [`minimize`] — generalized tableau minimization (backchase with
//!   trivial constraints).
//!
//! Everything is built on one structure: the congruence-closure e-graph
//! of a query's body ([`canon::QueryGraph`] over [`egraph::EGraph`]).
//!
//! ## The two API layers
//!
//! All of the above exist twice:
//!
//! 1. **Free functions** — `chase(q, deps, cfg)`, `contained_in(q1, q2,
//!    deps, cfg)`, `backchase(u, deps, cfg)`, … Stateless and
//!    convenient; each call allocates a throwaway [`ChaseContext`].
//!    Right for one-off questions, examples and tests.
//! 2. **The context API** — [`ChaseContext`] owns a dependency set and a
//!    budget and memoizes chase outcomes (keyed by alpha-normalized
//!    query, held as *resumable* states), containment verdicts and
//!    implication verdicts across calls: [`ChaseContext::chase`],
//!    [`ChaseContext::contained_in`], [`ChaseContext::implies`],
//!    [`backchase_in`], [`backchase_greedy_in`], [`examine_removal_in`],
//!    [`is_minimal_in`]. The backchase explores an exponential removal
//!    lattice whose nodes keep asking the same questions — the context
//!    is what makes that affordable, and the optimizer runs one context
//!    per optimization so its chase, backchase and cleanup phases reuse
//!    each other's work. [`CacheStats`] exposes hit/miss counters.
//!
//! Use the free functions until you ask two questions of the same
//! dependency set; then hold a context. A held context is safe to keep:
//! it fingerprints its dependency set ([`ChaseContext::ensure_deps`]
//! resets it automatically when asked about a different theory) and its
//! memo tables can be bounded ([`ChaseContext::with_memo_cap`]).
//!
//! The backchase enumeration itself is exposed as [`PlanSearch`]: a
//! streaming driver that hands each equivalence-verified subquery to a
//! [`SearchVisitor`] which steers the walk — explore, prune a
//! sublattice, or accept and stop — with an admission gate that can cut
//! candidates *before* their equivalence checks and a priority hook
//! that orders the frontier. The optimizer's cost-guided
//! branch-and-bound strategy is one such visitor; [`backchase_in`] is
//! the collect-everything one. [`MustRemainAnalysis`] reads the same
//! lattice structure statically: which bindings every
//! equivalence-preserving removal set keeps (and which source paths a
//! binding can be re-expressed to) — the ingredient of the optimizer's
//! summed cost lower bound.

pub mod backchase;
pub mod canon;
pub mod chase;
pub mod context;
pub mod egraph;
pub mod faults;
pub mod hom;
pub mod implication;
pub mod must_remain;
pub mod parallel;
pub mod shared;
pub mod termination;

mod containment;

pub use backchase::{
    backchase, backchase_greedy, backchase_greedy_in, backchase_in, backchase_step,
    backchase_step_in, examine_removal, examine_removal_in, first_unsafe, is_minimal,
    is_minimal_in, minimize, BackchaseConfig, BackchaseOutcome, ExploreAll, PlanSearch,
    RemovalJudgement, SearchBudget, SearchOutcome, SearchVisitor, Visit,
};
pub use canon::QueryGraph;
pub use chase::{
    chase, chase_step, coalesce_duplicates, ChaseConfig, ChaseOutcome, ChaseStepTrace,
};
pub use containment::{contained_in, contained_in_pre_chased, equivalent};
pub use context::{CacheStats, ChaseContext, ChaseProver};
pub use egraph::EGraph;
pub use faults::{FaultKind, FaultSpec, FaultStats, InjectedFault, ScopedFaults, SpecError};
pub use implication::implies;
pub use must_remain::MustRemainAnalysis;
pub use parallel::{ParallelExploreAll, ParallelPlanSearch, ParallelVisitor};
pub use shared::{SharedChaseContext, SharedProver};
pub use termination::{
    analyze_termination, analyze_termination_with_witness, is_weakly_acyclic,
    weak_acyclicity_witness, CycleWitness, TerminationVerdict,
};
