//! # cb-chase — the chase & backchase engines
//!
//! The rewriting core of *Physical Data Independence, Constraints and
//! Optimization with Universal Plans* (Deutsch, Popa, Tannen; VLDB 1999):
//!
//! * [`chase`] — phase 1: rewrite a query with EPCD constraints until a
//!   fixpoint, producing the **universal plan** that "holds in one place
//!   essentially all possible physical plans expressible in our
//!   language";
//! * [`backchase`] — phase 2: enumerate the minimal plans by removing
//!   redundant bindings, each removal justified by a constraint implied
//!   by `D ∪ D'`;
//! * [`implies`] — the chase-based constraint-implication prover behind
//!   backchase condition (3);
//! * [`contained_in`] / [`equivalent`] — PC query containment under
//!   constraints (containment mappings into the chased query);
//! * [`minimize`] — generalized tableau minimization (backchase with
//!   trivial constraints).
//!
//! Everything is built on one structure: the congruence-closure e-graph
//! of a query's body ([`canon::QueryGraph`] over [`egraph::EGraph`]).

pub mod backchase;
pub mod canon;
pub mod chase;
pub mod egraph;
pub mod hom;
pub mod implication;
pub mod termination;

mod containment;

pub use backchase::{
    backchase, backchase_greedy, backchase_step, examine_removal, is_minimal, minimize,
    BackchaseConfig, BackchaseOutcome, RemovalJudgement,
};
pub use canon::QueryGraph;
pub use chase::{
    chase, chase_step, coalesce_duplicates, ChaseConfig, ChaseOutcome, ChaseStepTrace,
};
pub use containment::{contained_in, contained_in_pre_chased, equivalent};
pub use egraph::EGraph;
pub use implication::implies;
pub use termination::{analyze_termination, is_weakly_acyclic, TerminationVerdict};
