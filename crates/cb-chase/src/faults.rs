//! Deterministic fault injection for the chase/search/optimizer stack.
//!
//! A [`FailPoint`] is a named site threaded through a hot seam of the
//! system — a shard lock acquisition, a frontier pop, a chase step, a
//! pipeline operator — at which a configured fault fires: a panic, an
//! artificial delay, a spurious [`Err`], or a memory-pressure signal.
//! The resilience layer (worker `catch_unwind`, shard poison recovery,
//! checkout retry, the optimizer's degradation ladder) is exercised by
//! the chaos harness (`tests/chaos.rs`) through exactly these sites.
//!
//! **Zero cost when disabled.** Every site guards its slow path behind
//! [`armed`] — a single relaxed atomic load. A process that never sets
//! `CB_FAULTS` (and never calls [`install`]) pays one branch per site.
//!
//! **Deterministic.** Triggers are counter-based (`@n`: the nth hit of a
//! site, `*n`: every nth hit) or seeded-probabilistic (`%p`: a splitmix
//! hash of `(seed, site, hit counter)` compared against `p`), so a fault
//! schedule replays bit-identically under a fixed seed regardless of
//! thread interleaving of *other* sites.
//!
//! **Never silently swallowed.** Every fired fault is counted
//! ([`FaultStats::injected`]); the code that absorbs one must call
//! [`note_recovered`] (the fault was survived internally: a retry, a
//! re-claimed node, a shed cache) or [`note_reported`] (the fault
//! surfaced to the caller as a typed error or a degradation-trace
//! entry). The chaos harness asserts `injected == recovered + reported`
//! after every schedule. Delays self-acknowledge as recovered when they
//! fire — sleeping is its own recovery.
//!
//! # `CB_FAULTS` syntax
//!
//! Semicolon-separated entries; one optional `seed=N` entry plus any
//! number of `site=action[trigger]` entries:
//!
//! ```text
//! CB_FAULTS="seed=42;parallel::pop=panic@3;shared::shard_lock=err%0.2;exec::op=delay:5"
//! ```
//!
//! Actions: `panic`, `err`, `mem`, `delay:MILLIS`. Triggers: `@N` (the
//! Nth hit only, 1-based), `*N` (every Nth hit), `%P` (probability `P`
//! in `[0, 1]` per hit, seeded); no trigger means every hit. Site names
//! must come from [`SITES`]; cb-analyze's CB040 lint validates a spec
//! without arming it.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

std::thread_local! {
    /// Scoped-arming participation: set for the thread that installed a
    /// [`ScopedFaults`] schedule and for worker threads that [`adopt`]ed
    /// its token. Ignored under global (`CB_FAULTS`/[`install`]) arming.
    static PARTICIPANT: Cell<bool> = const { Cell::new(false) };
}

/// Every registered failpoint site, in dependency order: cb-chase's
/// chase/containment seams, the sharded core, the parallel frontier,
/// and the engine's pipeline driver. The CB040 lint rejects a
/// `CB_FAULTS` spec naming anything else; the chaos harness's coverage
/// test proves each one is reachable from a real workload.
pub const SITES: &[&str] = &[
    // One resumable chase step (`ChaseState::step`) is about to run.
    "chase::step",
    // A containment proof's hom-search/step loop iteration.
    "context::contained_in",
    // An implication proof (`D ⊨ σ`) is about to be computed.
    "context::implies",
    // A shard mutex was just acquired (fires *inside* the lock, so a
    // panic here genuinely poisons the shard).
    "shared::shard_lock",
    // A chase memo entry is being checked out of its shard.
    "shared::checkout",
    // A checked-out entry is being parked back.
    "shared::park",
    // A memo insert is about to land (the memory-pressure seam).
    "shared::memo",
    // A worker popped a frontier node (fires outside the lock).
    "parallel::pop",
    // A worker is claiming a child removal set.
    "parallel::claim",
    // The driver is about to spawn a search worker.
    "parallel::spawn",
    // A worker is about to run the visit verdict (costing).
    "parallel::visit",
    // The pipeline driver is about to execute an operator.
    "exec::op",
];

/// The four things a site can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` with a recognizable payload (see [`is_injected_panic`]).
    Panic,
    /// Sleep, then proceed normally (self-acknowledged as recovered).
    Delay,
    /// A spurious transient error returned to the site's caller.
    Error,
    /// A memory-pressure signal (the shared core sheds the shard).
    MemPressure,
}

/// A fired fault a site hands back to its caller (only the two
/// non-control-flow kinds — `Error` and `MemPressure` — are returned;
/// panics unwind and delays block in place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired (one of [`SITES`]).
    pub site: &'static str,
    /// [`FaultKind::Error`] or [`FaultKind::MemPressure`].
    pub kind: FaultKind,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected {:?} fault at {}", self.kind, self.site)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    Panic,
    Delay(Duration),
    Error,
    MemPressure,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the nth hit only (1-based).
    Nth(u64),
    /// Fire on every nth hit.
    EveryNth(u64),
    /// Fire with probability p per hit, seeded and counter-hashed.
    Prob(f64),
}

/// A `CB_FAULTS` entry that failed to parse or validate. CB040 carries
/// these as diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending entry, verbatim.
    pub entry: String,
    /// Why it was rejected.
    pub reason: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault entry `{}`: {}", self.entry, self.reason)
    }
}

/// A parsed, validated fault schedule (site plans + seed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    seed: u64,
    plans: Vec<(&'static str, Action, Trigger)>,
}

impl FaultSpec {
    /// The sites this schedule targets.
    pub fn sites(&self) -> Vec<&'static str> {
        self.plans.iter().map(|(s, _, _)| *s).collect()
    }
}

/// Counters of fired faults and their acknowledgements.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Faults fired, total.
    pub injected: u64,
    /// Faults survived internally (retry, re-claim, shed, delay).
    pub recovered: u64,
    /// Faults surfaced to the caller (typed error, degradation trace).
    pub reported: u64,
    /// Fired faults per site.
    pub injected_by_site: BTreeMap<&'static str, u64>,
    /// Raw hit counts per site while armed (fired or not) — the chaos
    /// harness's reachability evidence.
    pub hits_by_site: BTreeMap<&'static str, u64>,
}

impl FaultStats {
    /// Acknowledged faults: recovered + reported. The chaos harness's
    /// no-silent-swallowing invariant is `injected == acknowledged()`.
    pub fn acknowledged(&self) -> u64 {
        self.recovered + self.reported
    }
}

#[derive(Default)]
struct Registry {
    spec_text: String,
    seed: u64,
    plans: BTreeMap<&'static str, (Action, Trigger)>,
    stats: FaultStats,
    /// Scoped arming ([`ScopedFaults`]): only participant threads (the
    /// installer and workers that adopted its token) observe the
    /// schedule — concurrently running tests in the same process do
    /// not. Global arming (`CB_FAULTS` / [`install`]): every thread.
    scoped: bool,
}

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Three-state flag: uninitialized (consult `CB_FAULTS` once), off, on.
static STATE: AtomicU8 = AtomicU8::new(UNINIT);

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Is any fault schedule armed? One relaxed atomic load after the first
/// call (the first call resolves `CB_FAULTS` from the environment).
#[inline]
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    // Serialize first-time init through the registry lock so two racing
    // callers cannot install twice; losers observe the winner's STATE.
    let _guard = registry();
    match STATE.load(Ordering::Relaxed) {
        OFF => return false,
        ON => return true,
        _ => {}
    }
    drop(_guard);
    match std::env::var("CB_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => match install(&spec) {
            Ok(()) => true,
            Err(errors) => {
                // Invalid spec: refuse to arm, but never silently — the
                // operator asked for faults and is not getting them.
                for e in &errors {
                    eprintln!("CB_FAULTS ignored: {e}");
                }
                STATE.store(OFF, Ordering::Relaxed);
                false
            }
        },
        _ => {
            STATE.store(OFF, Ordering::Relaxed);
            false
        }
    }
}

/// Parses and validates a `CB_FAULTS` spec without arming anything —
/// the CB040 lint's entry point.
pub fn parse_spec(spec: &str) -> Result<FaultSpec, Vec<SpecError>> {
    let mut out = FaultSpec::default();
    let mut errors = Vec::new();
    for raw in spec.split(';') {
        let entry = raw.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((lhs, rhs)) = entry.split_once('=') else {
            errors.push(SpecError {
                entry: entry.to_string(),
                reason: "expected `seed=N` or `site=action[trigger]`".to_string(),
            });
            continue;
        };
        let (lhs, rhs) = (lhs.trim(), rhs.trim());
        if lhs == "seed" {
            match rhs.parse::<u64>() {
                Ok(s) => out.seed = s,
                Err(_) => errors.push(SpecError {
                    entry: entry.to_string(),
                    reason: format!("seed `{rhs}` is not a u64"),
                }),
            }
            continue;
        }
        let Some(site) = SITES.iter().copied().find(|s| *s == lhs) else {
            errors.push(SpecError {
                entry: entry.to_string(),
                reason: format!(
                    "unknown failpoint site `{lhs}` (registered sites: {})",
                    SITES.join(", ")
                ),
            });
            continue;
        };
        match parse_action(rhs) {
            Ok((action, trigger)) => out.plans.push((site, action, trigger)),
            Err(reason) => errors.push(SpecError {
                entry: entry.to_string(),
                reason,
            }),
        }
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

fn parse_action(rhs: &str) -> Result<(Action, Trigger), String> {
    // Split the trigger suffix off first: `@N`, `*N`, or `%P`.
    let (body, trigger) = if let Some((b, n)) = rhs.split_once('@') {
        let n = n
            .parse::<u64>()
            .map_err(|_| format!("`@{n}` is not a hit count"))?;
        if n == 0 {
            return Err("`@0` never fires; hit counts are 1-based".to_string());
        }
        (b, Trigger::Nth(n))
    } else if let Some((b, n)) = rhs.split_once('*') {
        let n = n
            .parse::<u64>()
            .map_err(|_| format!("`*{n}` is not a period"))?;
        if n == 0 {
            return Err("`*0` never fires; periods are 1-based".to_string());
        }
        (b, Trigger::EveryNth(n))
    } else if let Some((b, p)) = rhs.split_once('%') {
        let p = p
            .parse::<f64>()
            .map_err(|_| format!("`%{p}` is not a probability"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} outside [0, 1]"));
        }
        (b, Trigger::Prob(p))
    } else {
        (rhs, Trigger::Always)
    };
    let action = match body.trim() {
        "panic" => Action::Panic,
        "err" => Action::Error,
        "mem" => Action::MemPressure,
        other => {
            if let Some(ms) = other.strip_prefix("delay:") {
                let ms = ms
                    .parse::<u64>()
                    .map_err(|_| format!("`delay:{ms}` is not a millisecond count"))?;
                Action::Delay(Duration::from_millis(ms))
            } else {
                return Err(format!(
                    "unknown action `{other}` (expected panic, err, mem, or delay:MS)"
                ));
            }
        }
    };
    Ok((action, trigger))
}

/// Arms a fault schedule for the whole process. Replaces any previous
/// schedule and resets all counters. Tests should prefer
/// [`ScopedFaults::install`], which also serializes against other
/// fault-driven tests and disarms on drop.
pub fn install(spec: &str) -> Result<(), Vec<SpecError>> {
    install_inner(spec, false)
}

fn install_inner(spec: &str, scoped: bool) -> Result<(), Vec<SpecError>> {
    let parsed = parse_spec(spec)?;
    let mut r = registry();
    r.spec_text = spec.to_string();
    r.seed = parsed.seed;
    r.plans = parsed
        .plans
        .into_iter()
        .map(|(s, a, t)| (s, (a, t)))
        .collect();
    r.stats = FaultStats::default();
    r.scoped = scoped;
    STATE.store(ON, Ordering::Relaxed);
    Ok(())
}

/// Scoped-arming inheritance for worker pools: the spawning thread
/// grabs a token, each spawned worker [`adopt`]s it, and a thread-scoped
/// schedule then reaches exactly the spawner's workers. Free (and
/// meaningless) under global arming or when disarmed.
pub fn inherit_token() -> bool {
    PARTICIPANT.with(Cell::get)
}

/// Marks the current thread a participant of a scoped schedule (see
/// [`inherit_token`]). A `false` token is a no-op.
pub fn adopt(token: bool) {
    if token {
        PARTICIPANT.with(|p| p.set(true));
    }
}

/// Disarms every failpoint and clears the schedule and counters.
pub fn disarm() {
    let mut r = registry();
    *r = Registry::default();
    STATE.store(OFF, Ordering::Relaxed);
}

/// The spec text currently armed, if any (the optimizer's preflight
/// lints it through CB040).
pub fn active_spec() -> Option<String> {
    if !armed() {
        return None;
    }
    let r = registry();
    if r.spec_text.is_empty() {
        None
    } else {
        Some(r.spec_text.clone())
    }
}

/// The failpoint: call at a registered site. Disarmed: one atomic load,
/// `Ok`. Armed: counts the hit and fires the configured fault, if any —
/// a panic unwinds from here, a delay sleeps here, and the two signal
/// kinds come back as `Err` for the site's caller to recover or report.
#[inline]
pub fn hit(site: &'static str) -> Result<(), InjectedFault> {
    if !armed() {
        return Ok(());
    }
    fire(site)
}

#[cold]
fn fire(site: &'static str) -> Result<(), InjectedFault> {
    let action = {
        let mut r = registry();
        // A thread-scoped schedule is invisible to non-participants:
        // their hits neither count nor fire, so a `ScopedFaults` test
        // cannot perturb (or be perturbed by) concurrently running
        // tests in the same process.
        if r.scoped && !PARTICIPANT.with(Cell::get) {
            return Ok(());
        }
        let count = {
            let n = r.stats.hits_by_site.entry(site).or_insert(0);
            *n += 1;
            *n
        };
        let Some(&(action, trigger)) = r.plans.get(site) else {
            return Ok(());
        };
        let fires = match trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => count == n,
            Trigger::EveryNth(n) => count % n == 0,
            Trigger::Prob(p) => unit_interval(mix(r.seed, site, count)) < p,
        };
        if !fires {
            return Ok(());
        }
        r.stats.injected += 1;
        *r.stats.injected_by_site.entry(site).or_insert(0) += 1;
        if matches!(action, Action::Delay(_)) {
            // A delay recovers by construction: the site just waits.
            r.stats.recovered += 1;
        }
        action
    };
    match action {
        Action::Panic => panic!("cb-fault: injected panic at {site}"),
        Action::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        Action::Error => Err(InjectedFault {
            site,
            kind: FaultKind::Error,
        }),
        Action::MemPressure => Err(InjectedFault {
            site,
            kind: FaultKind::MemPressure,
        }),
    }
}

/// Acknowledges a fault that was survived internally (retried, shed,
/// re-claimed). No-op when disarmed, so recovery paths can call it
/// unconditionally.
pub fn note_recovered() {
    if armed() {
        registry().stats.recovered += 1;
    }
}

/// Acknowledges a fault that surfaced to the caller as a typed error or
/// a degradation-trace entry.
pub fn note_reported() {
    if armed() {
        registry().stats.reported += 1;
    }
}

/// Does a caught panic payload come from an injected [`FaultKind::Panic`]
/// (as opposed to a genuine bug)? Recovery code counts the former as
/// recovered; both are survived the same way.
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .is_some_and(|s| s.starts_with("cb-fault:"))
        || payload
            .downcast_ref::<&str>()
            .is_some_and(|s| s.starts_with("cb-fault:"))
}

/// Snapshot of the fault counters.
pub fn stats() -> FaultStats {
    registry().stats.clone()
}

/// Counter-hashed splitmix finalizer over `(seed, site, hit count)` —
/// the probabilistic trigger's coin, deterministic per (seed, site, n).
fn mix(seed: u64, site: &str, count: u64) -> u64 {
    let mut h = seed ^ count.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Top 53 bits as a float in `[0, 1)`.
fn unit_interval(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// RAII guard for fault-driven tests: serializes against every other
/// `ScopedFaults` holder in the process (fault state is global), arms
/// the schedule, and disarms + clears counters on drop. Chaos tests in
/// one binary can therefore run under the default parallel test runner.
pub struct ScopedFaults {
    _gate: MutexGuard<'static, ()>,
}

static TEST_GATE: Mutex<()> = Mutex::new(());

impl ScopedFaults {
    /// Arms `spec` for the lifetime of the guard, **thread-scoped**: only
    /// this thread (and worker threads that [`adopt`] its
    /// [`inherit_token`]) observe the schedule, so concurrently running
    /// tests in the same binary are untouched.
    pub fn install(spec: &str) -> Result<ScopedFaults, Vec<SpecError>> {
        // A previous holder may have died mid-panic test: the gate's
        // poison carries no state worth propagating.
        let gate = TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        install_inner(spec, true)?;
        PARTICIPANT.with(|p| p.set(true));
        Ok(ScopedFaults { _gate: gate })
    }
}

impl Drop for ScopedFaults {
    fn drop(&mut self) {
        PARTICIPANT.with(|p| p.set(false));
        disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hits_are_free_and_ok() {
        let _guard = ScopedFaults::install("seed=1").unwrap();
        disarm();
        assert!(!armed());
        assert!(hit("parallel::pop").is_ok());
        // No counters move while disarmed.
        assert_eq!(stats().hits_by_site.len(), 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _guard = ScopedFaults::install("parallel::pop=err@3").unwrap();
        let mut errs = 0;
        for _ in 0..10 {
            if hit("parallel::pop").is_err() {
                errs += 1;
                note_recovered();
            }
        }
        assert_eq!(errs, 1);
        let s = stats();
        assert_eq!(s.injected, 1);
        assert_eq!(s.injected_by_site.get("parallel::pop"), Some(&1));
        assert_eq!(s.hits_by_site.get("parallel::pop"), Some(&10));
        assert_eq!(s.acknowledged(), 1);
    }

    #[test]
    fn every_nth_trigger_has_the_right_period() {
        let _guard = ScopedFaults::install("shared::checkout=mem*4").unwrap();
        let fired: Vec<bool> = (0..12).map(|_| hit("shared::checkout").is_err()).collect();
        let expect: Vec<bool> = (1..=12).map(|i| i % 4 == 0).collect();
        assert_eq!(fired, expect);
        assert_eq!(stats().injected, 3);
    }

    #[test]
    fn probabilistic_trigger_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let _guard =
                ScopedFaults::install(&format!("seed={seed};chase::step=err%0.5")).unwrap();
            (0..64).map(|_| hit("chase::step").is_err()).collect()
        };
        let a1 = run(7);
        let a2 = run(7);
        let b = run(8);
        assert_eq!(a1, a2, "same seed, same schedule");
        assert_ne!(a1, b, "different seed, different schedule");
        let fired = a1.iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&fired), "p=0.5 fired {fired}/64");
    }

    #[test]
    fn injected_panics_are_recognizable() {
        let _guard = ScopedFaults::install("parallel::visit=panic@1").unwrap();
        let err = std::panic::catch_unwind(|| {
            let _ = hit("parallel::visit");
        })
        .unwrap_err();
        assert!(is_injected_panic(err.as_ref()));
        assert!(!is_injected_panic(
            Box::new("unrelated".to_string()).as_ref()
        ));
    }

    #[test]
    fn delay_self_acknowledges() {
        let _guard = ScopedFaults::install("exec::op=delay:1@1").unwrap();
        let t0 = std::time::Instant::now();
        assert!(hit("exec::op").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(1));
        let s = stats();
        assert_eq!(s.injected, 1);
        assert_eq!(s.recovered, 1);
    }

    #[test]
    fn spec_errors_name_the_offense() {
        let errs =
            parse_spec("seed=x;nope::site=panic;exec::op=explode;exec::op=err%1.5").unwrap_err();
        assert_eq!(errs.len(), 4);
        assert!(errs[0].reason.contains("not a u64"));
        assert!(errs[1].reason.contains("unknown failpoint site"));
        assert!(errs[2].reason.contains("unknown action"));
        assert!(errs[3].reason.contains("outside [0, 1]"));
        // A valid spec parses and lists its sites.
        let ok = parse_spec("seed=9;exec::op=err@1;shared::park=delay:2").unwrap();
        assert_eq!(ok.sites(), vec!["exec::op", "shared::park"]);
    }

    #[test]
    fn every_registered_site_is_unique_and_parses() {
        for site in SITES {
            let spec = format!("{site}=panic@1");
            parse_spec(&spec).unwrap_or_else(|e| panic!("{site}: {e:?}"));
        }
        let mut sorted: Vec<&str> = SITES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), SITES.len(), "duplicate site names");
    }
}
