//! A thread-shareable chase core: the three memo tables of
//! [`ChaseContext`] sharded behind per-shard locks.
//!
//! The parallel backchase ([`ParallelPlanSearch`](crate::ParallelPlanSearch))
//! runs N workers against one memoized prover, so the single-owner
//! `&mut`-threaded [`ChaseContext`] cannot serve it. A
//! [`SharedChaseContext`] keeps the same three memos — chase states,
//! containment verdicts, implication verdicts — but distributes each over
//! [`SharedChaseContext::with_shards`] shards, keyed by the hash of the
//! existing alpha-normalized (or canonicalized, for dependencies) memo
//! keys, each shard behind its own [`Mutex`]. Workers touching different
//! keys contend only on the hash-selected shard, never on the core.
//!
//! **Checkout protocol.** Chase states are *resumable* and must be
//! stepped under `&mut` access, which a shard lock must not be held for
//! (a chase step can be the most expensive operation in the system). An
//! entry is therefore *checked out* of its shard
//! ([`ChaseSlot::CheckedOut`] is left in its place), stepped outside the
//! lock, and parked again afterwards. A worker that needs a state
//! currently checked out by another worker — the out-of-order
//! parent/child arrival the lattice walk makes routine — does not block:
//! it falls back to a fresh chase from scratch (counted as a miss) and
//! throws its private state away, letting the owner park the canonical
//! one. Contention can therefore duplicate work, never corrupt it; with
//! one worker the hit/miss accounting is identical to the sequential
//! context's.
//!
//! Per-shard [`CacheStats`] are aggregated by [`SharedChaseContext::stats`]
//! via [`CacheStats::absorb`]; [`SharedChaseContext::with_memo_cap`]
//! splits the FIFO eviction cap evenly across shards (with one shard the
//! eviction order is exactly the sequential context's).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pcql::query::Query;
use pcql::Dependency;

use crate::chase::{ChaseConfig, ChaseOutcome, ChaseState};
use crate::containment::output_matching_hom;
use crate::context::{
    canonical_dependency, insert_bounded, CacheStats, ChaseContext, ChaseProver, ChasedEntry,
};
use crate::faults::{self, FaultKind};
use crate::implication::implies_uncached;

/// Default shard count: enough that 2–8 workers rarely collide on a
/// shard, small enough that aggregating stats stays trivial.
const DEFAULT_SHARDS: usize = 16;

/// Bounded retries on a contended (or transiently failing) checkout
/// before falling back to a private fresh chase. The backoff per attempt
/// is tiny — a parked state usually returns within one chase step.
const CHECKOUT_RETRIES: usize = 3;

/// Bounded backoff between checkout attempts: yield first (the common
/// case — the owner is one step from parking), then sleep briefly.
fn backoff(attempt: usize) {
    match attempt {
        0 => std::thread::yield_now(),
        n => std::thread::sleep(Duration::from_micros(20 << n.min(4))),
    }
}

/// A parked (or absent-while-borrowed) chase memo entry.
enum ChaseSlot {
    /// The resumable state is home and may be checked out.
    Parked(Box<ChasedEntry>),
    /// Some worker is stepping the state outside the shard lock; others
    /// fall back to a fresh chase instead of waiting.
    CheckedOut,
}

/// One shard: a slice of each of the three memo tables plus its own
/// counters, all guarded by a single mutex.
#[derive(Default)]
struct MemoShard {
    chased: HashMap<Query, ChaseSlot>,
    chase_order: VecDeque<Query>,
    containment: HashMap<(Query, Query), bool>,
    containment_order: VecDeque<(Query, Query)>,
    implication: HashMap<Dependency, bool>,
    implication_order: VecDeque<Dependency>,
    stats: CacheStats,
    /// Approximate bytes held by this shard's memos: a per-entry
    /// estimate added on insert, zeroed on shed/recovery. Deliberately
    /// never decremented on FIFO eviction — the over-count only makes
    /// pressure sheds fire *earlier*, and shedding is always sound.
    bytes: usize,
}

impl MemoShard {
    /// Drops every memo entry (a cache — always safe), keeping counters.
    fn clear_memos(&mut self) {
        self.chased.clear();
        self.chase_order.clear();
        self.containment.clear();
        self.containment_order.clear();
        self.implication.clear();
        self.implication_order.clear();
        self.bytes = 0;
    }

    /// Sheds this shard under memory pressure (counted).
    fn shed(&mut self) {
        self.clear_memos();
        self.stats.pressure_sheds += 1;
    }
}

/// Rough per-entry footprint of a memoized query (key or resumable
/// state): a fixed overhead plus a per-AST-node constant. Only relative
/// accuracy matters — the governor compares sums against a limit.
fn approx_query_bytes(q: &Query) -> usize {
    64 + 48 * q.size()
}

fn approx_dependency_bytes(d: &Dependency) -> usize {
    64 + 48 * (d.forall.len() + d.exists.len() + d.premise.len() + d.conclusion.len())
}

/// The sharded, thread-shareable counterpart of [`ChaseContext`]: one
/// dependency set, one budget, and the three memos distributed over
/// per-shard locks so concurrent search workers can all prove against it
/// through `&self`. See the module docs for the checkout protocol.
pub struct SharedChaseContext {
    deps: Vec<Dependency>,
    cfg: ChaseConfig,
    /// Same identity notion as [`ChaseContext::fingerprint`].
    fingerprint: u64,
    /// Total memo cap across shards (0 = unbounded), split evenly.
    memo_cap: usize,
    /// Approximate total memo-byte limit across shards (0 = unbounded);
    /// a shard exceeding its even split sheds itself (see
    /// [`CacheStats::pressure_sheds`]).
    byte_limit: usize,
    shards: Vec<Mutex<MemoShard>>,
    /// Seeded-witness counter — the only stat not naturally owned by a
    /// shard (it is incremented by the search loop, not a memo lookup).
    seeded_hom_hits: AtomicU64,
}

impl SharedChaseContext {
    /// A shared core over `deps` with the given chase budgets and the
    /// default shard count.
    pub fn new(deps: Vec<Dependency>, cfg: ChaseConfig) -> SharedChaseContext {
        let fingerprint = ChaseContext::fingerprint_of(&deps, &cfg);
        SharedChaseContext {
            deps,
            cfg,
            fingerprint,
            memo_cap: 0,
            byte_limit: 0,
            shards: (0..DEFAULT_SHARDS)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
            seeded_hom_hits: AtomicU64::new(0),
        }
    }

    /// Re-shards the (empty) core to `n` shards. With one shard the hit,
    /// miss and eviction accounting is byte-identical to a sequential
    /// [`ChaseContext`] run of the same workload.
    pub fn with_shards(mut self, n: usize) -> SharedChaseContext {
        self.shards = (0..n.max(1))
            .map(|_| Mutex::new(MemoShard::default()))
            .collect();
        self
    }

    /// Caps the memo tables at `cap` entries *in total*, split evenly
    /// across shards and evicted FIFO per shard, mirroring
    /// [`ChaseContext::with_memo_cap`]. A cap of **0 means unbounded**
    /// (the default), same as the sequential context and
    /// `OptimizerConfig` — the per-shard split special-cases it so the
    /// `div_ceil` never turns "unlimited" into "cache nothing".
    pub fn with_memo_cap(mut self, cap: usize) -> SharedChaseContext {
        self.memo_cap = cap;
        self
    }

    /// Caps the memos at approximately `bytes` across shards (0 =
    /// unbounded, the default). A shard whose estimated footprint
    /// exceeds its even split of the limit *sheds itself* — drops every
    /// entry and counts a [`CacheStats::pressure_sheds`] — the first
    /// rung of the optimizer's degradation ladder. Shedding recomputes,
    /// it never changes a verdict.
    pub fn with_byte_limit(mut self, bytes: usize) -> SharedChaseContext {
        self.byte_limit = bytes;
        self
    }

    /// The approximate bytes currently held across all shards.
    pub fn approx_memo_bytes(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).bytes).sum()
    }

    /// The dependency set this core reasons over.
    pub fn deps(&self) -> &[Dependency] {
        &self.deps
    }

    /// The chase budgets in force.
    pub fn cfg(&self) -> &ChaseConfig {
        &self.cfg
    }

    /// The fingerprint of this core's `(deps, cfg)` — comparable with
    /// [`ChaseContext::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A per-worker [`ChaseProver`] handle onto this core. Cheap; make
    /// one per thread.
    pub fn prover(&self) -> SharedProver<'_> {
        SharedProver { shared: self }
    }

    /// The even split of `memo_cap` one shard may hold. 0 (unbounded)
    /// must stay 0 — `insert_bounded` reads `cap == 0` as "no limit",
    /// so dividing it through would instead evict everything.
    fn per_shard_cap(&self) -> usize {
        if self.memo_cap == 0 {
            0
        } else {
            self.memo_cap.div_ceil(self.shards.len())
        }
    }

    fn shard_of<K: Hash + ?Sized>(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Acquires a shard, recovering a poisoned mutex by discarding only
    /// that shard's memo entries: the contents are caches, so dropping
    /// them is always sound, and a worker that panicked mid-insert may
    /// have left a torn entry behind. Counted in
    /// [`CacheStats::poison_recoveries`].
    fn lock(&self, idx: usize) -> std::sync::MutexGuard<'_, MemoShard> {
        let mut guard = match self.shards[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.shards[idx].clear_poison();
                let mut g = poisoned.into_inner();
                g.clear_memos();
                g.stats.poison_recoveries += 1;
                g
            }
        };
        // Failpoint *inside* the held lock: an injected panic here
        // genuinely poisons this shard, exercising the recovery above.
        // A transient Err is recovered by proceeding with the guard; a
        // pressure signal sheds the shard on the spot.
        match faults::hit("shared::shard_lock") {
            Ok(()) => {}
            Err(f) if f.kind == FaultKind::MemPressure => {
                guard.shed();
                faults::note_recovered();
            }
            Err(_) => faults::note_recovered(),
        }
        guard
    }

    /// Enforces the byte limit after an insert grew the shard.
    fn enforce_byte_limit(&self, shard: &mut MemoShard) {
        if self.byte_limit > 0 && shard.bytes > self.byte_limit / self.shards.len().max(1) {
            shard.shed();
        }
    }

    /// Checks the chase entry for `key` out of its shard: a parked state
    /// is taken (hit, `owned = true`), a missing one is created fresh
    /// after leaving a `CheckedOut` marker (miss, `owned = true`), and a
    /// state another worker holds is *retried* with a bounded backoff
    /// ([`CacheStats::checkout_retries`]; the owner usually parks within
    /// one chase step) before being substituted by a private fresh one
    /// (miss, `owned = false`) — the out-of-order fallback. An injected
    /// transient failure at the `shared::checkout` failpoint takes the
    /// same retry path, so contention and fault recovery share one
    /// discipline.
    fn checkout(&self, idx: usize, key: &Query, q: &Query) -> (ChasedEntry, bool) {
        for attempt in 0..=CHECKOUT_RETRIES {
            let last = attempt == CHECKOUT_RETRIES;
            // Failpoint: Err models a transient acquisition failure
            // (retried, like contention); a pressure signal sheds the
            // shard before the lookup.
            let injected = faults::hit("shared::checkout").err();
            let mut guard = self.lock(idx);
            let shard = &mut *guard;
            if let Some(f) = injected {
                faults::note_recovered();
                if f.kind == FaultKind::MemPressure {
                    shard.shed();
                } else if !last {
                    shard.stats.checkout_retries += 1;
                    drop(guard);
                    backoff(attempt);
                    continue;
                }
            }
            match shard.chased.get_mut(key) {
                Some(slot) => match std::mem::replace(slot, ChaseSlot::CheckedOut) {
                    ChaseSlot::Parked(entry) => {
                        shard.stats.chase_hits += 1;
                        return (*entry, true);
                    }
                    ChaseSlot::CheckedOut => {
                        if !last {
                            shard.stats.checkout_retries += 1;
                            drop(guard);
                            backoff(attempt);
                            continue;
                        }
                        shard.stats.chase_misses += 1;
                        return (
                            ChasedEntry {
                                state: ChaseState::new(q),
                                outcome: None,
                            },
                            false,
                        );
                    }
                },
                None => {
                    shard.stats.chase_misses += 1;
                    insert_bounded(
                        &mut shard.chased,
                        &mut shard.chase_order,
                        self.per_shard_cap(),
                        &mut shard.stats.evictions,
                        key.clone(),
                        ChaseSlot::CheckedOut,
                    );
                    return (
                        ChasedEntry {
                            state: ChaseState::new(q),
                            outcome: None,
                        },
                        true,
                    );
                }
            }
        }
        unreachable!("checkout loop returns on its last attempt")
    }

    /// Parks an owned entry back into its slot. If the slot was evicted
    /// (or shed) while checked out, the entry is simply dropped
    /// (recomputing later counts as the miss that eviction always
    /// implies). Accounts the entry's approximate footprint and enforces
    /// the byte limit.
    fn park(&self, idx: usize, key: &Query, entry: ChasedEntry) {
        // Failpoint (outside the lock — `shared::shard_lock` covers the
        // poisoning case): a transient Err drops the park, which is a
        // lost cache write, recovered by recomputation.
        match faults::hit("shared::park") {
            Ok(()) => {}
            Err(f) => {
                faults::note_recovered();
                if f.kind == FaultKind::Error {
                    return;
                }
            }
        }
        let mut guard = self.lock(idx);
        let shard = &mut *guard;
        if let Some(slot) = shard.chased.get_mut(key) {
            shard.bytes += approx_query_bytes(key) + approx_query_bytes(&entry.state.query);
            *slot = ChaseSlot::Parked(Box::new(entry));
            self.enforce_byte_limit(shard);
        }
    }

    /// Chases `q` to a fixpoint (or budget), memoized — the shared
    /// counterpart of [`ChaseContext::chase`].
    pub fn chase(&self, q: &Query) -> ChaseOutcome {
        let key = q.alpha_normalized();
        let idx = self.shard_of(&key);
        let (mut entry, owned) = self.checkout(idx, &key, q);
        if entry.outcome.is_none() {
            while entry.state.step(&self.deps, &self.cfg) {}
            entry.outcome = Some(entry.state.finalize(&self.deps, &self.cfg));
        }
        let out = entry.outcome.clone().expect("outcome just finalized");
        if owned {
            self.park(idx, &key, entry);
        }
        out
    }

    /// Is `q1 ⊑ q2` under this core's dependencies (set semantics)?
    /// Memoized and lazy exactly like [`ChaseContext::contained_in`]: the
    /// chase of `q1` is checked out, stepped outside any lock until a
    /// witness appears (or the fixpoint refutes one), and parked resumed.
    pub fn contained_in(&self, q1: &Query, q2: &Query) -> bool {
        // Same failpoint contract as `ChaseContext::contained_in`.
        if faults::hit("context::contained_in").is_err() {
            faults::note_recovered();
        }
        let ckey = (q1.alpha_normalized(), q2.alpha_normalized());
        let cidx = self.shard_of(&ckey);
        {
            let mut guard = self.lock(cidx);
            let shard = &mut *guard;
            if let Some(&v) = shard.containment.get(&ckey) {
                shard.stats.containment_hits += 1;
                return v;
            }
            shard.stats.containment_misses += 1;
        }
        let chase_key = ckey.0.clone();
        let idx = self.shard_of(&chase_key);
        let (mut entry, owned) = self.checkout(idx, &chase_key, q1);
        let result = loop {
            let output = entry.state.query.output.clone();
            if output_matching_hom(&mut entry.state.graph, &output, q2, &self.cfg, None).is_some() {
                break true;
            }
            if !entry.state.step(&self.deps, &self.cfg) {
                break false;
            }
        };
        if owned {
            self.park(idx, &chase_key, entry);
        }
        // Failpoint on the verdict insert: losing the cache write is
        // recovered by recomputation; pressure sheds the shard first.
        let mut pressured = false;
        match faults::hit("shared::memo") {
            Ok(()) => {}
            Err(f) => {
                faults::note_recovered();
                if f.kind == FaultKind::Error {
                    return result;
                }
                pressured = true;
            }
        }
        let mut guard = self.lock(cidx);
        let shard = &mut *guard;
        if pressured {
            shard.shed();
        }
        shard.bytes += approx_query_bytes(&ckey.0) + approx_query_bytes(&ckey.1);
        insert_bounded(
            &mut shard.containment,
            &mut shard.containment_order,
            self.per_shard_cap(),
            &mut shard.stats.evictions,
            ckey,
            result,
        );
        self.enforce_byte_limit(shard);
        result
    }

    /// Are the queries equivalent under this core's dependencies?
    pub fn equivalent(&self, q1: &Query, q2: &Query) -> bool {
        self.contained_in(q1, q2) && self.contained_in(q2, q1)
    }

    /// Does the dependency set imply `sigma`? Memoized on the
    /// canonicalized `sigma`, computed outside any lock.
    pub fn implies(&self, sigma: &Dependency) -> bool {
        // Same failpoint contract as `ChaseContext::implies`.
        if faults::hit("context::implies").is_err() {
            faults::note_recovered();
        }
        let key = canonical_dependency(sigma);
        let idx = self.shard_of(&key);
        {
            let mut guard = self.lock(idx);
            let shard = &mut *guard;
            if let Some(&v) = shard.implication.get(&key) {
                shard.stats.implication_hits += 1;
                return v;
            }
            shard.stats.implication_misses += 1;
        }
        let v = implies_uncached(&self.deps, sigma, &self.cfg);
        let mut guard = self.lock(idx);
        let shard = &mut *guard;
        shard.bytes += approx_dependency_bytes(&key);
        insert_bounded(
            &mut shard.implication,
            &mut shard.implication_order,
            self.per_shard_cap(),
            &mut shard.stats.evictions,
            key,
            v,
        );
        self.enforce_byte_limit(shard);
        v
    }

    pub(crate) fn note_seeded_hom(&self) {
        self.seeded_hom_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregated counters: the field-wise sum of every shard's
    /// [`CacheStats`] plus the shared seeded-witness counter.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for idx in 0..self.shards.len() {
            total.absorb(&self.lock(idx).stats);
        }
        total.seeded_hom_hits += self.seeded_hom_hits.load(Ordering::Relaxed);
        total
    }

    /// The per-shard counters (for shard-balance diagnostics; the E18
    /// experiment reports their hit rates).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        (0..self.shards.len()).map(|i| self.lock(i).stats).collect()
    }
}

/// A per-worker handle implementing [`ChaseProver`] against a
/// [`SharedChaseContext`]: the trait wants `&mut self` (the sequential
/// context genuinely mutates), the shared core only needs `&self`, so the
/// handle is where the two calling conventions meet.
pub struct SharedProver<'a> {
    shared: &'a SharedChaseContext,
}

impl<'a> SharedProver<'a> {
    /// The shared core this handle proves against.
    pub fn shared(&self) -> &'a SharedChaseContext {
        self.shared
    }
}

impl ChaseProver for SharedProver<'_> {
    fn cfg(&self) -> &ChaseConfig {
        self.shared.cfg()
    }
    fn implies(&mut self, sigma: &Dependency) -> bool {
        self.shared.implies(sigma)
    }
    fn contained_in(&mut self, q1: &Query, q2: &Query) -> bool {
        self.shared.contained_in(q1, q2)
    }
    fn note_seeded_hom(&mut self) {
        self.shared.note_seeded_hom();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::{parse_dependency, parse_query};

    fn theory() -> Vec<Dependency> {
        vec![
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap(),
            parse_dependency("key", "forall (p in R) (q in R) where p.K = q.K -> p = q").unwrap(),
        ]
    }

    /// The three questions, abstracted so one workload can run against
    /// either core (and against a `&SharedChaseContext` from many
    /// threads).
    trait Core {
        fn chase_q(&mut self, q: &Query);
        fn contained(&mut self, a: &Query, b: &Query) -> bool;
        fn implies_d(&mut self, s: &Dependency) -> bool;
    }
    impl Core for ChaseContext {
        fn chase_q(&mut self, q: &Query) {
            self.chase(q);
        }
        fn contained(&mut self, a: &Query, b: &Query) -> bool {
            self.contained_in(a, b)
        }
        fn implies_d(&mut self, s: &Dependency) -> bool {
            self.implies(s)
        }
    }
    impl Core for &SharedChaseContext {
        fn chase_q(&mut self, q: &Query) {
            SharedChaseContext::chase(self, q);
        }
        fn contained(&mut self, a: &Query, b: &Query) -> bool {
            SharedChaseContext::contained_in(self, a, b)
        }
        fn implies_d(&mut self, s: &Dependency) -> bool {
            SharedChaseContext::implies(self, s)
        }
    }

    /// One fixed workload asked of any core; returns the verdicts so
    /// differential tests can compare them too.
    fn run_workload(core: &mut dyn Core) -> Vec<bool> {
        let qs: Vec<Query> = [
            "select struct(A = r.A) from R r",
            "select struct(A = x.A) from R x", // alpha-equivalent: a hit
            "select struct(A = r.A) from R r, S s where r.B = s.B",
            "select struct(B = s.B) from S s",
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
        let sigma =
            parse_dependency("g", "forall (p in R) (q in R) where p.K = q.K -> p.B = q.B").unwrap();
        let mut verdicts = Vec::new();
        for q in &qs {
            core.chase_q(q);
        }
        for a in &qs {
            for b in &qs {
                verdicts.push(core.contained(a, b));
            }
        }
        // Repeat one pair: containment memo hit.
        verdicts.push(core.contained(&qs[0], &qs[2]));
        verdicts.push(core.implies_d(&sigma));
        verdicts.push(core.implies_d(&sigma)); // implication memo hit
        verdicts
    }

    fn sequential_baseline() -> (Vec<bool>, CacheStats) {
        let mut ctx = ChaseContext::new(theory(), ChaseConfig::default());
        let verdicts = run_workload(&mut ctx);
        (verdicts, ctx.stats())
    }

    fn shared_run(shards: usize, cap: usize) -> (Vec<bool>, CacheStats) {
        let shared = SharedChaseContext::new(theory(), ChaseConfig::default())
            .with_shards(shards)
            .with_memo_cap(cap);
        let verdicts = run_workload(&mut &shared);
        (verdicts, shared.stats())
    }

    #[test]
    fn sharded_totals_equal_sequential_totals() {
        // The satellite guarantee: per-shard counters summed over any
        // shard count equal the single-threaded context's counters on an
        // identical (uncontended, uncapped) workload.
        let (seq_verdicts, seq_stats) = sequential_baseline();
        for shards in [1, 4, 16] {
            let (verdicts, stats) = shared_run(shards, 0);
            assert_eq!(verdicts, seq_verdicts, "verdicts @ {shards} shards");
            assert_eq!(stats, seq_stats, "stats @ {shards} shards");
        }
        assert!(seq_stats.chase_hits > 0);
        assert!(seq_stats.containment_hits > 0);
        assert_eq!(seq_stats.implication_hits, 1);
    }

    #[test]
    fn zero_memo_cap_means_unbounded_not_empty() {
        // Regression: 0 must survive the per-shard split as "no limit".
        // If the split divided it through, every insert would evict
        // immediately and this workload would see zero hits.
        for shards in [1, 4, 16] {
            let (_, stats) = shared_run(shards, 0);
            assert_eq!(stats.evictions, 0, "cap-0 run evicted @ {shards} shards");
            assert!(
                stats.chase_hits > 0 && stats.containment_hits > 0,
                "cap-0 run retained nothing @ {shards} shards: {stats:?}"
            );
        }
    }

    #[test]
    fn single_shard_memo_cap_matches_sequential_fifo() {
        // With one shard the FIFO eviction order is the sequential one,
        // so even a capped run's counters line up exactly.
        let mut ctx = ChaseContext::new(theory(), ChaseConfig::default()).with_memo_cap(2);
        let seq_verdicts = run_workload(&mut ctx);
        let (verdicts, stats) = shared_run(1, 2);
        assert_eq!(verdicts, seq_verdicts);
        assert_eq!(stats, ctx.stats());
        assert!(stats.evictions > 0, "{stats:?}");
    }

    #[test]
    fn concurrent_workers_agree_with_sequential_verdicts() {
        let (seq_verdicts, _) = sequential_baseline();
        let shared = SharedChaseContext::new(theory(), ChaseConfig::default());
        let all: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| run_workload(&mut &shared)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for verdicts in all {
            assert_eq!(verdicts, seq_verdicts);
        }
        // Contention may duplicate work (extra misses) and cross-worker
        // memo hits may skip it, but every distinct question was computed
        // at least once: no fewer lookups than one sequential pass.
        let stats = shared.stats();
        let (_, seq_stats) = sequential_baseline();
        assert!(stats.hits() + stats.misses() >= seq_stats.hits() + seq_stats.misses());
    }

    #[test]
    fn prover_handle_counts_seeded_homs() {
        let shared = SharedChaseContext::new(theory(), ChaseConfig::default());
        let mut prover = shared.prover();
        prover.note_seeded_hom();
        prover.note_seeded_hom();
        assert_eq!(shared.stats().seeded_hom_hits, 2);
    }

    #[test]
    fn poisoned_shard_recovers_by_discarding_only_that_shard() {
        let shared = SharedChaseContext::new(theory(), ChaseConfig::default()).with_shards(2);
        let (seq_verdicts, _) = sequential_baseline();
        let verdicts = run_workload(&mut &shared);
        assert_eq!(verdicts, seq_verdicts);
        // Poison shard 0 by panicking while holding its guard.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.lock(0);
            panic!("poison shard 0");
        }));
        // Every verdict is still served, and exactly one recovery is
        // counted; the other shard's memos survive untouched.
        let verdicts = run_workload(&mut &shared);
        assert_eq!(verdicts, seq_verdicts);
        let stats = shared.stats();
        assert_eq!(stats.poison_recoveries, 1, "{stats:?}");
        let per_shard = shared.shard_stats();
        assert_eq!(per_shard[0].poison_recoveries, 1);
        assert_eq!(per_shard[1].poison_recoveries, 0);
    }

    #[test]
    fn byte_limit_sheds_shards_without_changing_verdicts() {
        let (seq_verdicts, _) = sequential_baseline();
        // A limit far below one entry's footprint: every insert sheds.
        let shared = SharedChaseContext::new(theory(), ChaseConfig::default())
            .with_shards(1)
            .with_byte_limit(32);
        let verdicts = run_workload(&mut &shared);
        assert_eq!(verdicts, seq_verdicts);
        let stats = shared.stats();
        assert!(stats.pressure_sheds > 0, "{stats:?}");
        assert!(shared.approx_memo_bytes() <= 32 * 2, "sheds keep it tiny");
        // An unbounded core never sheds.
        let (_, unbounded) = shared_run(4, 0);
        assert_eq!(unbounded.pressure_sheds, 0);
    }

    #[test]
    fn injected_checkout_failures_are_retried_and_recovered() {
        use crate::faults;
        let _guard = faults::ScopedFaults::install("shared::checkout=err@1").unwrap();
        let shared = SharedChaseContext::new(theory(), ChaseConfig::default());
        let (seq_verdicts, _) = sequential_baseline();
        let verdicts = run_workload(&mut &shared);
        assert_eq!(verdicts, seq_verdicts);
        let stats = shared.stats();
        assert!(stats.checkout_retries >= 1, "{stats:?}");
        let fs = faults::stats();
        assert_eq!(fs.injected, 1);
        assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
    }
}
