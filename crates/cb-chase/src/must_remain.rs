//! Must-remain analysis over the backchase removal lattice.
//!
//! For a node of the subquery lattice of a universal plan `u` (identified
//! by its removal set `R`), a surviving binding *must remain* when every
//! equivalence-preserving descendant of the node keeps it. The optimizer
//! uses this to tighten its branch-and-bound cost lower bound: a plan
//! derivable below the node pays for *all* must-remain bindings, not just
//! its cheapest one, so their access floors can be summed.
//!
//! Deciding must-remain exactly would mean enumerating the sublattice —
//! the very thing the bound exists to avoid — so [`MustRemainAnalysis`]
//! computes a sound **under-approximation** from the lattice's
//! equivalence structure (the congruence e-graph of `u` that every
//! backchase subquery is carved out of). A binding `b` is reported
//! must-remain at `R` when the dependent closure of `R ∪ {b}` provably
//! admits no subquery at all, for one of two reasons that are *monotone*
//! in the removal set:
//!
//! * **everything goes** — the closure drags every binding of `u` along
//!   (footnote 7 of the paper: a binding whose source mentions removed
//!   variables and cannot be re-expressed is removed too). Dependent
//!   closure is monotone, so every removal set below `R` that contains
//!   `b` also removes everything and is not a subquery.
//! * **the output breaks** — some output path of `u` cannot be
//!   re-expressed avoiding the closure (condition 2 of the backchase).
//!   E-graph extraction can only fail *more* as the forbidden set grows,
//!   so no removal set below `R` containing `b` can rebuild the output
//!   either.
//!
//! Failure modes that are **not** monotone along descent — a cyclic
//! binding order after re-expression, an unprovably-safe lookup, a failed
//! equivalence check — are deliberately ignored: removing *more* bindings
//! can cure them (the cycle participant disappears, the unsafe lookup is
//! re-expressed away), so treating them as must-remain evidence would
//! over-approximate and break the admissibility of a bound built on the
//! result. Under-approximation is always safe there: a smaller
//! must-remain set only weakens (never unsounds) the bound.
//!
//! [`MustRemainAnalysis::possible_sources`] is the companion question the
//! cost side needs: *which source paths can this binding take across the
//! lattice?* Removals re-express a surviving binding's source within its
//! congruence class (avoiding the removed variables), so the answer is
//! the class's realizable paths in `u`'s graph — the same equivalence
//! structure, read in the other direction.

use std::collections::{BTreeMap, BTreeSet};

use pcql::path::Path;
use pcql::query::Query;

use crate::backchase::{dependent_closure, rewrite_output};
use crate::canon::QueryGraph;

/// Must-remain and possible-source analysis of one universal plan's
/// removal lattice. Holds its own [`QueryGraph`] of `u` (the class
/// structure is fixed once `u` is — lattice descent only reads it), and
/// memoizes per removal set, since a branch-and-bound visitor asks about
/// the same node at both its admission gate and its visit.
#[derive(Debug, Clone)]
pub struct MustRemainAnalysis {
    u: Query,
    graph: QueryGraph,
    memo: BTreeMap<BTreeSet<String>, BTreeSet<String>>,
    sources: Option<BTreeMap<String, Vec<Path>>>,
}

impl MustRemainAnalysis {
    /// An analysis over the subquery lattice of `u` (which should already
    /// be chased, exactly like the input of a [`PlanSearch`]).
    ///
    /// [`PlanSearch`]: crate::backchase::PlanSearch
    pub fn new(u: &Query) -> MustRemainAnalysis {
        MustRemainAnalysis {
            u: u.clone(),
            graph: QueryGraph::of_query(u),
            memo: BTreeMap::new(),
            sources: None,
        }
    }

    /// The universal plan this analysis reasons over.
    pub fn universal(&self) -> &Query {
        &self.u
    }

    /// The bindings of the lattice node `removed` that every
    /// equivalence-preserving descendant (the node itself included) is
    /// guaranteed to keep — a sound under-approximation; see the module
    /// docs for which evidence counts.
    pub fn must_remain(&mut self, removed: &BTreeSet<String>) -> BTreeSet<String> {
        if let Some(m) = self.memo.get(removed) {
            return m.clone();
        }
        let vars: Vec<String> = self
            .u
            .from
            .iter()
            .map(|b| b.var.clone())
            .filter(|v| !removed.contains(v))
            .collect();
        let mut out = BTreeSet::new();
        for v in vars {
            let mut seed = removed.clone();
            seed.insert(v.clone());
            let closure = dependent_closure(&self.u, &mut self.graph, seed);
            let blocked = closure.len() >= self.u.from.len()
                || rewrite_output(&mut self.graph, &self.u.output, &closure).is_none();
            if blocked {
                out.insert(v);
            }
        }
        self.memo.insert(removed.clone(), out.clone());
        out
    }

    /// Every source path the binding of `var` can take in a lattice node
    /// that keeps it: its own source plus the realizable paths of the
    /// source's congruence class (removals re-express sources within
    /// their class, so this is exhaustive for closed re-expressions; open
    /// ones are covered conservatively by the cost side's global floor).
    pub fn possible_sources(&mut self, var: &str) -> &[Path] {
        if self.sources.is_none() {
            let reals = self.graph.egraph.realizable_paths(&BTreeSet::new());
            let mut map: BTreeMap<String, Vec<Path>> = BTreeMap::new();
            for b in &self.u.from {
                let class = self.graph.egraph.add_path(&b.src);
                let class = self.graph.egraph.find(class);
                let mut paths = reals.get(&class).cloned().unwrap_or_default();
                if !paths.contains(&b.src) {
                    paths.push(b.src.clone());
                }
                map.insert(b.var.clone(), paths);
            }
            self.sources = Some(map);
        }
        self.sources
            .as_ref()
            .and_then(|m| m.get(var))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase, ChaseConfig};
    use pcql::parser::{parse_dependency, parse_query};

    fn none() -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn set(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn single_closed_unreexpressible_binding_must_remain() {
        // The only binding carries the only output path: no removal set
        // keeps the output, so the binding survives every descendant.
        let q = parse_query("select struct(A = r.A) from R r").unwrap();
        let mut a = MustRemainAnalysis::new(&q);
        assert_eq!(a.must_remain(&none()), set(&["r"]));
    }

    #[test]
    fn output_pinned_join_sides_must_remain() {
        // Both output fields are only expressible from their own binding.
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let mut a = MustRemainAnalysis::new(&q);
        assert_eq!(a.must_remain(&none()), set(&["r", "s"]));
    }

    #[test]
    fn view_reexpressible_binding_is_not_must_remain() {
        // v.A = r.A makes the output realizable from either side, so
        // neither r nor v is pinned at the root; s never appears in the
        // output at all.
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let mut a = MustRemainAnalysis::new(&u);
        assert_eq!(a.must_remain(&none()), none());
    }

    #[test]
    fn must_remain_grows_monotonically_along_descent() {
        // Once v is removed, the output can only come from r: deeper in
        // the lattice the pinned set grows, never shrinks.
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let mut a = MustRemainAnalysis::new(&u);
        let root = a.must_remain(&none());
        let below_v = a.must_remain(&set(&["v"]));
        assert!(below_v.is_superset(&root));
        assert!(below_v.contains("r"), "below {{v}}: {below_v:?}");
        // Symmetrically, dropping r pins v.
        assert!(a.must_remain(&set(&["r", "s"])).contains("v"));
    }

    #[test]
    fn dependent_closure_drag_counts_as_must_remain() {
        // Removing d drags s (bound to d.DProjs, not re-expressible) and
        // the output needs s: d is pinned even though no output path
        // mentions d itself.
        let q = parse_query("select struct(S = s) from depts d, d.DProjs s").unwrap();
        let mut a = MustRemainAnalysis::new(&q);
        let m = a.must_remain(&none());
        assert_eq!(m, set(&["d", "s"]));
    }

    #[test]
    fn possible_sources_enumerate_class_reexpressions() {
        // The condition puts the closed root V in the class of s's
        // source: both the open original and the closed alternative are
        // reported (closed alternatives are the ones the cost side prices
        // exactly; open ones it floors globally).
        let q = parse_query("select struct(S = s) from depts d, d.DProjs s where d.DProjs = V")
            .unwrap();
        let mut a = MustRemainAnalysis::new(&q);
        let sources = a.possible_sources("s");
        assert!(
            sources.contains(&Path::var("d").field("DProjs")),
            "{sources:?}"
        );
        assert!(sources.contains(&Path::root("V")), "{sources:?}");
        // A binding with no congruent alternatives just reports itself.
        assert_eq!(a.possible_sources("d"), vec![Path::root("depts")]);
        assert!(a.possible_sources("nope").is_empty());
    }

    #[test]
    fn chased_view_scenario_matches_lattice_reality() {
        // On the chased R ⋈ S ⊑ V scenario the analysis agrees with what
        // the enumeration actually finds: nothing is pinned at the root
        // (both the base-join and view-only plans exist).
        let q = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let deps = vec![
            parse_dependency(
                "c_V",
                "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
            )
            .unwrap(),
            parse_dependency(
                "c'_V",
                "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
            )
            .unwrap(),
        ];
        let u = chase(&q, &deps, &ChaseConfig::default()).query;
        let mut a = MustRemainAnalysis::new(&u);
        assert_eq!(a.must_remain(&none()), none());
        // The memo serves repeats.
        assert_eq!(a.must_remain(&none()), none());
    }
}
