//! The shared, memoized chase core.
//!
//! Every phase of chase & backchase bottoms out in the same three
//! questions — *what does `q` chase to?*, *is `q1 ⊑ q2`?*, *does `D ⊨ σ`
//! hold?* — and the backchase asks them once per node of an exponential
//! removal lattice. A [`ChaseContext`] owns one dependency set and one
//! [`ChaseConfig`] and memoizes all three:
//!
//! * **chase outcomes**, keyed by the alpha-normalized query. Entries
//!   hold a *resumable* [`ChaseState`](crate::chase::ChaseState) rather
//!   than a finished result: a containment check stops chasing the
//!   moment a witness homomorphism appears (sound, because every chase
//!   prefix is equivalent to the input), and the next check against the
//!   same query resumes from where the last one stopped;
//! * **containment verdicts**, keyed by the alpha-normalized pair;
//! * **implication verdicts** `D ⊨ σ`, keyed by a canonicalized `σ`
//!   (bound variables renamed, conditions normalized and sorted) —
//!   lookup-safety and condition-pruning proofs repeat heavily across
//!   the lattice.
//!
//! [`CacheStats`] counts hits and misses so benchmarks (E7/E8) can
//! attribute speedups; [`ChaseContext::without_memo`] disables the
//! caches for differential testing — a memoized and a cache-disabled run
//! must produce byte-identical results.
//!
//! The free functions [`chase`](crate::chase()), [`contained_in`],
//! [`equivalent`], [`implies`], [`backchase`](crate::backchase()) …
//! remain available as thin wrappers that allocate a throwaway context;
//! use the context API whenever more than one question will be asked of
//! the same dependency set.

use std::collections::{BTreeMap, HashMap};

use pcql::query::{Binding, Equality, Query};
use pcql::Dependency;

use crate::chase::{ChaseConfig, ChaseOutcome, ChaseState};
use crate::containment::output_matching_hom;
use crate::implication::implies_uncached;

/// Cache hit/miss counters of a [`ChaseContext`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chase states reused (including partial states resumed by a later
    /// containment check).
    pub chase_hits: u64,
    /// Chase states built from scratch.
    pub chase_misses: u64,
    /// Containment verdicts answered from the memo.
    pub containment_hits: u64,
    /// Containment verdicts computed.
    pub containment_misses: u64,
    /// Implication verdicts answered from the memo.
    pub implication_hits: u64,
    /// Implication verdicts computed.
    pub implication_misses: u64,
    /// Containment checks discharged by validating a homomorphism seeded
    /// from the parent lattice node instead of searching.
    pub seeded_hom_hits: u64,
}

impl CacheStats {
    /// Total memo hits across all three caches.
    pub fn hits(&self) -> u64 {
        self.chase_hits + self.containment_hits + self.implication_hits
    }

    /// Total memo misses across all three caches.
    pub fn misses(&self) -> u64 {
        self.chase_misses + self.containment_misses + self.implication_misses
    }

    /// Fraction of lookups answered from a cache (0.0 when nothing was
    /// asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// A chase entry: the resumable state plus, once someone asked for the
/// full result, the finalized (coalesced) outcome.
#[derive(Debug, Clone)]
struct ChasedEntry {
    state: ChaseState,
    outcome: Option<ChaseOutcome>,
}

/// The shared, memoized chase core: one dependency set, one budget, and
/// caches for chase outcomes, containment and implication. See the
/// module docs for the architecture.
#[derive(Debug, Clone)]
pub struct ChaseContext {
    deps: Vec<Dependency>,
    cfg: ChaseConfig,
    caching: bool,
    chased: HashMap<Query, ChasedEntry>,
    containment: HashMap<(Query, Query), bool>,
    implication: HashMap<Dependency, bool>,
    stats: CacheStats,
}

impl ChaseContext {
    /// A context over `deps` with the given chase budgets.
    pub fn new(deps: Vec<Dependency>, cfg: ChaseConfig) -> ChaseContext {
        ChaseContext {
            deps,
            cfg,
            caching: true,
            chased: HashMap::new(),
            containment: HashMap::new(),
            implication: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// A context whose caches are disabled: every question is recomputed
    /// from scratch. Exists so differential tests can assert that
    /// memoization never changes an answer.
    pub fn without_memo(deps: Vec<Dependency>, cfg: ChaseConfig) -> ChaseContext {
        ChaseContext {
            caching: false,
            ..ChaseContext::new(deps, cfg)
        }
    }

    /// The dependency set this context reasons over.
    pub fn deps(&self) -> &[Dependency] {
        &self.deps
    }

    /// The chase budgets in force.
    pub fn cfg(&self) -> &ChaseConfig {
        &self.cfg
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub(crate) fn note_seeded_hom(&mut self) {
        self.stats.seeded_hom_hits += 1;
    }

    /// Ensures a chase entry for `q` exists under its alpha key; returns
    /// the key and whether existing state was reused.
    fn ensure_entry(&mut self, q: &Query) -> (Query, bool) {
        let key = q.alpha_normalized();
        let reused = self.caching && self.chased.contains_key(&key);
        if reused {
            self.stats.chase_hits += 1;
        } else {
            self.stats.chase_misses += 1;
            self.chased.insert(
                key.clone(),
                ChasedEntry {
                    state: ChaseState::new(q),
                    outcome: None,
                },
            );
        }
        (key, reused)
    }

    /// Chases `q` to a fixpoint (or budget), memoized.
    ///
    /// On a cache hit for an *alpha-equivalent but differently named*
    /// query, the returned outcome carries the variable names of the
    /// first query chased under this key; all derived judgements
    /// (containment, equivalence, implication) are invariant under that
    /// renaming.
    pub fn chase(&mut self, q: &Query) -> ChaseOutcome {
        let (key, _) = self.ensure_entry(q);
        let entry = self.chased.get_mut(&key).expect("entry just ensured");
        if entry.outcome.is_none() {
            while entry.state.step(&self.deps, &self.cfg) {}
            entry.outcome = Some(entry.state.finalize(&self.deps, &self.cfg));
        }
        entry.outcome.clone().expect("outcome just finalized")
    }

    /// Is `q1 ⊑ q2` under this context's dependencies (set semantics)?
    ///
    /// Chases `q1` *lazily*: after every step the containment mapping
    /// from `q2` is retried, and the chase stops at the first witness —
    /// a sound early exit, since each chase prefix is equivalent to
    /// `q1`. A verdict of `false` still requires the fixpoint (or the
    /// budget), exactly like the eager test.
    pub fn contained_in(&mut self, q1: &Query, q2: &Query) -> bool {
        let key = (q1.alpha_normalized(), q2.alpha_normalized());
        if self.caching {
            if let Some(&v) = self.containment.get(&key) {
                self.stats.containment_hits += 1;
                return v;
            }
        }
        self.stats.containment_misses += 1;
        let (chase_key, _) = self.ensure_entry(q1);
        let entry = self.chased.get_mut(&chase_key).expect("entry just ensured");
        let result = loop {
            let output = entry.state.query.output.clone();
            if output_matching_hom(&mut entry.state.graph, &output, q2, &self.cfg, None).is_some() {
                break true;
            }
            if !entry.state.step(&self.deps, &self.cfg) {
                break false;
            }
        };
        if self.caching {
            self.containment.insert(key, result);
        }
        result
    }

    /// Are the queries equivalent under this context's dependencies?
    pub fn equivalent(&mut self, q1: &Query, q2: &Query) -> bool {
        self.contained_in(q1, q2) && self.contained_in(q2, q1)
    }

    /// Does the dependency set imply `sigma` (as far as the bounded chase
    /// can tell)? Memoized on a canonicalized `sigma`; the underlying
    /// prover also early-exits the moment the conclusion is witnessed.
    pub fn implies(&mut self, sigma: &Dependency) -> bool {
        let key = canonical_dependency(sigma);
        if self.caching {
            if let Some(&v) = self.implication.get(&key) {
                self.stats.implication_hits += 1;
                return v;
            }
        }
        self.stats.implication_misses += 1;
        let v = implies_uncached(&self.deps, sigma, &self.cfg);
        if self.caching {
            self.implication.insert(key, v);
        }
        v
    }
}

/// Canonical memo key for a dependency: bound variables renamed to
/// `c0, c1, …` in (forall, exists) order, name cleared, conditions
/// normalized, sorted and deduplicated. Two dependencies that differ
/// only in variable names or condition order share a key.
fn canonical_dependency(sigma: &Dependency) -> Dependency {
    let map: BTreeMap<String, String> = sigma
        .forall
        .iter()
        .chain(sigma.exists.iter())
        .enumerate()
        .map(|(i, b)| (b.var.clone(), format!("c{i}")))
        .collect();
    let rename_binding = |b: &Binding| Binding {
        var: map.get(&b.var).cloned().unwrap_or_else(|| b.var.clone()),
        src: b.src.rename(&map),
        kind: b.kind,
    };
    let rename_eqs = |eqs: &[Equality]| -> Vec<Equality> {
        let mut out: Vec<Equality> = eqs.iter().map(|e| e.rename(&map).normalized()).collect();
        out.sort();
        out.dedup();
        out
    };
    Dependency {
        name: String::new(),
        forall: sigma.forall.iter().map(rename_binding).collect(),
        premise: rename_eqs(&sigma.premise),
        exists: sigma.exists.iter().map(rename_binding).collect(),
        conclusion: rename_eqs(&sigma.conclusion),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::{parse_dependency, parse_query};

    #[test]
    fn chase_memo_hits_on_alpha_equivalent_queries() {
        let d =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        let mut ctx = ChaseContext::new(vec![d], ChaseConfig::default());
        let q1 = parse_query("select struct(A = r.A) from R r").unwrap();
        let q2 = parse_query("select struct(A = x.A) from R x").unwrap();
        let o1 = ctx.chase(&q1);
        let o2 = ctx.chase(&q2);
        assert_eq!(o1.query.alpha_normalized(), o2.query.alpha_normalized());
        assert_eq!(ctx.stats().chase_hits, 1);
        assert_eq!(ctx.stats().chase_misses, 1);
    }

    #[test]
    fn containment_memo_and_disabled_context_agree() {
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap();
        let narrower = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        let wider = parse_query("select struct(A = r.A) from R r").unwrap();
        let mut on = ChaseContext::new(vec![ric.clone()], ChaseConfig::default());
        let mut off = ChaseContext::without_memo(vec![ric], ChaseConfig::default());
        for _ in 0..3 {
            assert!(on.equivalent(&narrower, &wider));
            assert!(off.equivalent(&narrower, &wider));
        }
        assert!(on.stats().containment_hits > 0);
        assert_eq!(off.stats().containment_hits, 0);
        assert_eq!(off.stats().containment_misses, 6);
    }

    #[test]
    fn implication_memo_ignores_names_and_condition_order() {
        let key =
            parse_dependency("key", "forall (p in R) (q in R) where p.K = q.K -> p = q").unwrap();
        let g1 = parse_dependency(
            "g1",
            "forall (p in R) (q in R) where p.K = q.K -> p.B = q.B",
        )
        .unwrap();
        let g2 = parse_dependency(
            "g2",
            "forall (x in R) (y in R) where y.K = x.K -> x.B = y.B",
        )
        .unwrap();
        let mut ctx = ChaseContext::new(vec![key], ChaseConfig::default());
        assert!(ctx.implies(&g1));
        assert!(ctx.implies(&g2));
        assert_eq!(ctx.stats().implication_misses, 1);
        assert_eq!(ctx.stats().implication_hits, 1);
    }
}
