//! The shared, memoized chase core.
//!
//! Every phase of chase & backchase bottoms out in the same three
//! questions — *what does `q` chase to?*, *is `q1 ⊑ q2`?*, *does `D ⊨ σ`
//! hold?* — and the backchase asks them once per node of an exponential
//! removal lattice. A [`ChaseContext`] owns one dependency set and one
//! [`ChaseConfig`] and memoizes all three:
//!
//! * **chase outcomes**, keyed by the alpha-normalized query. Entries
//!   hold a *resumable* [`ChaseState`](crate::chase::ChaseState) rather
//!   than a finished result: a containment check stops chasing the
//!   moment a witness homomorphism appears (sound, because every chase
//!   prefix is equivalent to the input), and the next check against the
//!   same query resumes from where the last one stopped;
//! * **containment verdicts**, keyed by the alpha-normalized pair;
//! * **implication verdicts** `D ⊨ σ`, keyed by a canonicalized `σ`
//!   (bound variables renamed, conditions normalized and sorted) —
//!   lookup-safety and condition-pruning proofs repeat heavily across
//!   the lattice.
//!
//! [`CacheStats`] counts hits and misses so benchmarks (E7/E8) can
//! attribute speedups; [`ChaseContext::without_memo`] disables the
//! caches for differential testing — a memoized and a cache-disabled run
//! must produce byte-identical results.
//!
//! Two guards make long-lived contexts safe to hold: the context
//! fingerprints its `(dependency set, budget)` and
//! [`ChaseContext::ensure_deps`] drops every memo when asked to reason
//! over a different theory (the optimizer calls it per optimization, so
//! reusing one context across catalogs can no longer serve unsound
//! memos), and [`ChaseContext::with_memo_cap`] bounds each memo table,
//! evicting oldest-first, so a context embedded in a service cannot grow
//! without bound. Both are counted in [`CacheStats`]
//! (`deps_resets`/`evictions`).
//!
//! The free functions [`chase`](crate::chase()), [`contained_in`],
//! [`equivalent`], [`implies`], [`backchase`](crate::backchase()) …
//! remain available as thin wrappers that allocate a throwaway context;
//! use the context API whenever more than one question will be asked of
//! the same dependency set.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};

use pcql::query::{Binding, Equality, Query};
use pcql::Dependency;

use crate::chase::{ChaseConfig, ChaseOutcome, ChaseState};
use crate::containment::output_matching_hom;
use crate::implication::implies_uncached;

/// Cache hit/miss counters of a [`ChaseContext`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chase states reused (including partial states resumed by a later
    /// containment check).
    pub chase_hits: u64,
    /// Chase states built from scratch.
    pub chase_misses: u64,
    /// Containment verdicts answered from the memo.
    pub containment_hits: u64,
    /// Containment verdicts computed.
    pub containment_misses: u64,
    /// Implication verdicts answered from the memo.
    pub implication_hits: u64,
    /// Implication verdicts computed.
    pub implication_misses: u64,
    /// Containment checks discharged by validating a homomorphism seeded
    /// from the parent lattice node instead of searching.
    pub seeded_hom_hits: u64,
    /// Automatic cache resets because the context was asked to reason
    /// over a different dependency set (or chase budget) than the one it
    /// was built for — see [`ChaseContext::ensure_deps`]. Memos computed
    /// under other constraints would be unsound, so the caches are
    /// dropped rather than served.
    pub deps_resets: u64,
    /// Spurious resets *avoided*: [`ChaseContext::ensure_deps`] was
    /// handed a reordered-but-identical dependency slice (same canonical
    /// set, different order) and kept every memo instead of resetting.
    /// Before fingerprinting went order-insensitive each of these was a
    /// full, pointless cold start — and would have been a plan-cache
    /// miss in a service keyed on the fingerprint.
    pub reorder_resets_avoided: u64,
    /// Memo entries dropped by the entry cap (oldest first) — see
    /// [`ChaseContext::with_memo_cap`].
    pub evictions: u64,
    /// Poisoned shard mutexes recovered by discarding that shard's memo
    /// entries (a cache, always safe to drop). Only the sharded
    /// [`SharedChaseContext`](crate::SharedChaseContext) can count these;
    /// a sequential context has no locks to poison.
    pub poison_recoveries: u64,
    /// Checkout attempts retried after transient contention or an
    /// injected transient failure, before falling back to a fresh chase.
    pub checkout_retries: u64,
    /// Shards shed (all memo entries dropped) under memory pressure —
    /// either the approximate byte limit or an injected pressure signal.
    pub pressure_sheds: u64,
}

impl CacheStats {
    /// Field-wise sum — used to aggregate per-shard counters of a
    /// [`SharedChaseContext`](crate::SharedChaseContext) and to merge the
    /// counters of the sequential context and the shared search core into
    /// one optimization-wide snapshot.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.chase_hits += other.chase_hits;
        self.chase_misses += other.chase_misses;
        self.containment_hits += other.containment_hits;
        self.containment_misses += other.containment_misses;
        self.implication_hits += other.implication_hits;
        self.implication_misses += other.implication_misses;
        self.seeded_hom_hits += other.seeded_hom_hits;
        self.deps_resets += other.deps_resets;
        self.reorder_resets_avoided += other.reorder_resets_avoided;
        self.evictions += other.evictions;
        self.poison_recoveries += other.poison_recoveries;
        self.checkout_retries += other.checkout_retries;
        self.pressure_sheds += other.pressure_sheds;
    }

    /// Total memo hits across all three caches.
    pub fn hits(&self) -> u64 {
        self.chase_hits + self.containment_hits + self.implication_hits
    }

    /// Total memo misses across all three caches.
    pub fn misses(&self) -> u64 {
        self.chase_misses + self.containment_misses + self.implication_misses
    }

    /// Fraction of lookups answered from a cache (0.0 when nothing was
    /// asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// A chase entry: the resumable state plus, once someone asked for the
/// full result, the finalized (coalesced) outcome. Shared with the
/// sharded [`SharedChaseContext`](crate::SharedChaseContext), whose
/// shards park the same resumable states.
#[derive(Debug, Clone)]
pub(crate) struct ChasedEntry {
    pub(crate) state: ChaseState,
    pub(crate) outcome: Option<ChaseOutcome>,
}

/// The questions backchase machinery asks of a chase core, abstracted
/// over *which* core answers them: the single-owner [`ChaseContext`]
/// (sequential search) or a per-worker handle onto the sharded
/// [`SharedChaseContext`](crate::SharedChaseContext) (parallel search).
/// Lookup-safety proofs ([`first_unsafe`](crate::first_unsafe)),
/// condition pruning and the lattice equivalence checks are generic over
/// this trait, so both searches run the exact same proof discipline.
pub trait ChaseProver {
    /// The chase budgets in force.
    fn cfg(&self) -> &ChaseConfig;
    /// Does the dependency set imply `sigma` (bounded-chase prover)?
    fn implies(&mut self, sigma: &Dependency) -> bool;
    /// Is `q1 ⊑ q2` under the dependency set (set semantics)?
    fn contained_in(&mut self, q1: &Query, q2: &Query) -> bool;
    /// Counts a containment check discharged by a parent-seeded witness.
    fn note_seeded_hom(&mut self);
}

impl ChaseProver for ChaseContext {
    fn cfg(&self) -> &ChaseConfig {
        ChaseContext::cfg(self)
    }
    fn implies(&mut self, sigma: &Dependency) -> bool {
        ChaseContext::implies(self, sigma)
    }
    fn contained_in(&mut self, q1: &Query, q2: &Query) -> bool {
        ChaseContext::contained_in(self, q1, q2)
    }
    fn note_seeded_hom(&mut self) {
        ChaseContext::note_seeded_hom(self);
    }
}

/// The shared, memoized chase core: one dependency set, one budget, and
/// caches for chase outcomes, containment and implication. See the
/// module docs for the architecture.
#[derive(Debug, Clone)]
pub struct ChaseContext {
    deps: Vec<Dependency>,
    cfg: ChaseConfig,
    caching: bool,
    /// Fingerprint of `(deps, cfg)` — the identity of the theory this
    /// context's memos are sound under.
    fingerprint: u64,
    /// Per-table entry cap (0 = unbounded); oldest entries evicted first.
    memo_cap: usize,
    chased: HashMap<Query, ChasedEntry>,
    chase_order: VecDeque<Query>,
    containment: HashMap<(Query, Query), bool>,
    containment_order: VecDeque<(Query, Query)>,
    implication: HashMap<Dependency, bool>,
    implication_order: VecDeque<Dependency>,
    stats: CacheStats,
}

impl ChaseContext {
    /// A context over `deps` with the given chase budgets.
    pub fn new(deps: Vec<Dependency>, cfg: ChaseConfig) -> ChaseContext {
        let fingerprint = ChaseContext::fingerprint_of(&deps, &cfg);
        ChaseContext {
            deps,
            cfg,
            caching: true,
            fingerprint,
            memo_cap: 0,
            chased: HashMap::new(),
            chase_order: VecDeque::new(),
            containment: HashMap::new(),
            containment_order: VecDeque::new(),
            implication: HashMap::new(),
            implication_order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// A context whose caches are disabled: every question is recomputed
    /// from scratch. Exists so differential tests can assert that
    /// memoization never changes an answer.
    pub fn without_memo(deps: Vec<Dependency>, cfg: ChaseConfig) -> ChaseContext {
        ChaseContext {
            caching: false,
            ..ChaseContext::new(deps, cfg)
        }
    }

    /// Caps each memo table (chase states, containment, implication) at
    /// `cap` entries, evicting the oldest entry first when the cap is
    /// exceeded (0 = unbounded, the default). An evicted answer is simply
    /// recomputed on the next ask — eviction can never change a verdict —
    /// so a context held by a long-running service stays bounded.
    /// Evictions are counted in [`CacheStats::evictions`].
    pub fn with_memo_cap(mut self, cap: usize) -> ChaseContext {
        self.memo_cap = cap;
        self
    }

    /// The per-table memo entry cap (0 = unbounded).
    pub fn memo_cap(&self) -> usize {
        self.memo_cap
    }

    /// Fingerprint of a dependency set + chase budget: a cheap first
    /// check on the identity of the theory a context's memos are sound
    /// under. **Order-insensitive**: the hash runs over the sorted
    /// canonical forms of the dependencies ([`canonical_dep_set`]), so
    /// two orderings of the same set — a catalog rebuilt with its
    /// constraints in a different order, the routine plan-cache churn of
    /// a long-lived service — fingerprint identically and keep their
    /// memos. (The memos are verdicts about the dependency *set*; the
    /// chase reaches the same fixpoint under any application order, so
    /// serving them across a reordering is sound.) A fingerprint match is
    /// only a hint: [`ChaseContext::ensure_deps`] confirms with exact
    /// comparison of the canonical forms, so a hash collision can never
    /// keep stale memos alive.
    pub fn fingerprint_of(deps: &[Dependency], cfg: &ChaseConfig) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        canonical_dep_set(deps).hash(&mut h);
        cfg.hash(&mut h);
        h.finish()
    }

    /// The fingerprint of this context's `(deps, cfg)`.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Guards against the context-reuse footgun: if this context was
    /// built for a *different* dependency set or chase budget than
    /// `(deps, cfg)`, re-point it and drop every memo — verdicts cached
    /// under other constraints would be silently unsound here. Returns
    /// whether a reset happened (also counted in
    /// [`CacheStats::deps_resets`]); on a match (fingerprint, confirmed
    /// by exact comparison of the canonical forms so collisions cannot
    /// smuggle stale memos through) this is a cheap no-op and all memos
    /// are kept. A *reordered-but-identical* dependency slice is a match,
    /// not a reset: the memos are sound under the set, the original
    /// ordering is kept, and the avoided reset is counted in
    /// [`CacheStats::reorder_resets_avoided`] — this is what keeps a
    /// plan cache keyed on the fingerprint from missing (and a memoized
    /// context from cold-starting) every time a catalog is rebuilt with
    /// its constraints permuted. `Optimizer::optimize_in` calls this on
    /// every optimization, so callers can hold one context across
    /// catalogs without tracking constraint identity themselves.
    pub fn ensure_deps(&mut self, deps: &[Dependency], cfg: &ChaseConfig) -> bool {
        let fp = ChaseContext::fingerprint_of(deps, cfg);
        if fp == self.fingerprint && cfg == &self.cfg {
            if deps == self.deps {
                return false;
            }
            // The fingerprint already hashes the canonical set; confirm
            // exactly so a collision cannot keep stale memos alive.
            if canonical_dep_set(deps) == canonical_dep_set(&self.deps) {
                self.stats.reorder_resets_avoided += 1;
                return false;
            }
        }
        self.deps = deps.to_vec();
        self.cfg = cfg.clone();
        self.fingerprint = fp;
        self.chased.clear();
        self.chase_order.clear();
        self.containment.clear();
        self.containment_order.clear();
        self.implication.clear();
        self.implication_order.clear();
        self.stats.deps_resets += 1;
        true
    }

    /// Drops every memo while keeping the theory and counters. Sound at
    /// any time (memos are caches); the optimizer's degradation ladder
    /// calls it after catching a panic mid-proof, when a resumable chase
    /// state may have been left half-stepped — recomputing is always
    /// safe, serving a possibly-torn state is not.
    pub fn clear_memos(&mut self) {
        self.chased.clear();
        self.chase_order.clear();
        self.containment.clear();
        self.containment_order.clear();
        self.implication.clear();
        self.implication_order.clear();
    }

    /// The dependency set this context reasons over.
    pub fn deps(&self) -> &[Dependency] {
        &self.deps
    }

    /// The chase budgets in force.
    pub fn cfg(&self) -> &ChaseConfig {
        &self.cfg
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub(crate) fn note_seeded_hom(&mut self) {
        self.stats.seeded_hom_hits += 1;
    }

    /// Ensures a chase entry for `q` exists under its alpha key; returns
    /// the key and whether existing state was reused.
    fn ensure_entry(&mut self, q: &Query) -> (Query, bool) {
        let key = q.alpha_normalized();
        let reused = self.caching && self.chased.contains_key(&key);
        if reused {
            self.stats.chase_hits += 1;
        } else {
            self.stats.chase_misses += 1;
            insert_bounded(
                &mut self.chased,
                &mut self.chase_order,
                self.memo_cap,
                &mut self.stats.evictions,
                key.clone(),
                ChasedEntry {
                    state: ChaseState::new(q),
                    outcome: None,
                },
            );
        }
        (key, reused)
    }

    /// Chases `q` to a fixpoint (or budget), memoized.
    ///
    /// On a cache hit for an *alpha-equivalent but differently named*
    /// query, the returned outcome carries the variable names of the
    /// first query chased under this key; all derived judgements
    /// (containment, equivalence, implication) are invariant under that
    /// renaming.
    pub fn chase(&mut self, q: &Query) -> ChaseOutcome {
        let (key, _) = self.ensure_entry(q);
        let entry = self.chased.get_mut(&key).expect("entry just ensured");
        if entry.outcome.is_none() {
            while entry.state.step(&self.deps, &self.cfg) {}
            entry.outcome = Some(entry.state.finalize(&self.deps, &self.cfg));
        }
        entry.outcome.clone().expect("outcome just finalized")
    }

    /// Is `q1 ⊑ q2` under this context's dependencies (set semantics)?
    ///
    /// Chases `q1` *lazily*: after every step the containment mapping
    /// from `q2` is retried, and the chase stops at the first witness —
    /// a sound early exit, since each chase prefix is equivalent to
    /// `q1`. A verdict of `false` still requires the fixpoint (or the
    /// budget), exactly like the eager test.
    pub fn contained_in(&mut self, q1: &Query, q2: &Query) -> bool {
        // Failpoint: a transient Err is recovered by proceeding (the
        // proof below is deterministic); a panic unwinds to the caller's
        // catch. Placed before any lookup so no memo is torn.
        if crate::faults::hit("context::contained_in").is_err() {
            crate::faults::note_recovered();
        }
        let key = (q1.alpha_normalized(), q2.alpha_normalized());
        if self.caching {
            if let Some(&v) = self.containment.get(&key) {
                self.stats.containment_hits += 1;
                return v;
            }
        }
        self.stats.containment_misses += 1;
        let (chase_key, _) = self.ensure_entry(q1);
        let entry = self.chased.get_mut(&chase_key).expect("entry just ensured");
        let result = loop {
            let output = entry.state.query.output.clone();
            if output_matching_hom(&mut entry.state.graph, &output, q2, &self.cfg, None).is_some() {
                break true;
            }
            if !entry.state.step(&self.deps, &self.cfg) {
                break false;
            }
        };
        if self.caching {
            insert_bounded(
                &mut self.containment,
                &mut self.containment_order,
                self.memo_cap,
                &mut self.stats.evictions,
                key,
                result,
            );
        }
        result
    }

    /// Are the queries equivalent under this context's dependencies?
    pub fn equivalent(&mut self, q1: &Query, q2: &Query) -> bool {
        self.contained_in(q1, q2) && self.contained_in(q2, q1)
    }

    /// Does the dependency set imply `sigma` (as far as the bounded chase
    /// can tell)? Memoized on a canonicalized `sigma`; the underlying
    /// prover also early-exits the moment the conclusion is witnessed.
    pub fn implies(&mut self, sigma: &Dependency) -> bool {
        // Failpoint: same recovery contract as `contained_in`.
        if crate::faults::hit("context::implies").is_err() {
            crate::faults::note_recovered();
        }
        let key = canonical_dependency(sigma);
        if self.caching {
            if let Some(&v) = self.implication.get(&key) {
                self.stats.implication_hits += 1;
                return v;
            }
        }
        self.stats.implication_misses += 1;
        let v = implies_uncached(&self.deps, sigma, &self.cfg);
        if self.caching {
            insert_bounded(
                &mut self.implication,
                &mut self.implication_order,
                self.memo_cap,
                &mut self.stats.evictions,
                key,
                v,
            );
        }
        v
    }
}

/// Inserts into a memo table whose insertion order is tracked by `order`,
/// evicting the oldest entry (and counting it) once `cap` is exceeded
/// (0 = unbounded). Overwrites of an existing key leave the order
/// untouched, so `order` always holds each key exactly once. The freshly
/// inserted key sits at the back, so with a cap >= 1 it is never the one
/// evicted.
pub(crate) fn insert_bounded<K: Eq + Hash + Clone, V>(
    map: &mut HashMap<K, V>,
    order: &mut VecDeque<K>,
    cap: usize,
    evictions: &mut u64,
    key: K,
    value: V,
) {
    if map.insert(key.clone(), value).is_none() {
        order.push_back(key);
        if cap > 0 && map.len() > cap {
            if let Some(old) = order.pop_front() {
                map.remove(&old);
                *evictions += 1;
            }
        }
    }
}

/// The canonical form of a dependency *set*: each dependency
/// canonicalized ([`canonical_dependency`]) and the whole slice sorted,
/// so two orderings of the same constraints compare (and hash) equal.
/// Duplicates are kept — a multiset, not a set — so the comparison in
/// [`ChaseContext::ensure_deps`] stays an exact confirmation.
pub(crate) fn canonical_dep_set(deps: &[Dependency]) -> Vec<Dependency> {
    let mut out: Vec<Dependency> = deps.iter().map(canonical_dependency).collect();
    out.sort();
    out
}

/// Canonical memo key for a dependency: bound variables renamed to
/// `c0, c1, …` in (forall, exists) order, name cleared, conditions
/// normalized, sorted and deduplicated. Two dependencies that differ
/// only in variable names or condition order share a key.
pub(crate) fn canonical_dependency(sigma: &Dependency) -> Dependency {
    let map: BTreeMap<String, String> = sigma
        .forall
        .iter()
        .chain(sigma.exists.iter())
        .enumerate()
        .map(|(i, b)| (b.var.clone(), format!("c{i}")))
        .collect();
    let rename_binding = |b: &Binding| Binding {
        var: map.get(&b.var).cloned().unwrap_or_else(|| b.var.clone()),
        src: b.src.rename(&map),
        kind: b.kind,
    };
    let rename_eqs = |eqs: &[Equality]| -> Vec<Equality> {
        let mut out: Vec<Equality> = eqs.iter().map(|e| e.rename(&map).normalized()).collect();
        out.sort();
        out.dedup();
        out
    };
    Dependency {
        name: String::new(),
        forall: sigma.forall.iter().map(rename_binding).collect(),
        premise: rename_eqs(&sigma.premise),
        exists: sigma.exists.iter().map(rename_binding).collect(),
        conclusion: rename_eqs(&sigma.conclusion),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::{parse_dependency, parse_query};

    #[test]
    fn chase_memo_hits_on_alpha_equivalent_queries() {
        let d =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        let mut ctx = ChaseContext::new(vec![d], ChaseConfig::default());
        let q1 = parse_query("select struct(A = r.A) from R r").unwrap();
        let q2 = parse_query("select struct(A = x.A) from R x").unwrap();
        let o1 = ctx.chase(&q1);
        let o2 = ctx.chase(&q2);
        assert_eq!(o1.query.alpha_normalized(), o2.query.alpha_normalized());
        assert_eq!(ctx.stats().chase_hits, 1);
        assert_eq!(ctx.stats().chase_misses, 1);
    }

    #[test]
    fn containment_memo_and_disabled_context_agree() {
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap();
        let narrower = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        let wider = parse_query("select struct(A = r.A) from R r").unwrap();
        let mut on = ChaseContext::new(vec![ric.clone()], ChaseConfig::default());
        let mut off = ChaseContext::without_memo(vec![ric], ChaseConfig::default());
        for _ in 0..3 {
            assert!(on.equivalent(&narrower, &wider));
            assert!(off.equivalent(&narrower, &wider));
        }
        assert!(on.stats().containment_hits > 0);
        assert_eq!(off.stats().containment_hits, 0);
        assert_eq!(off.stats().containment_misses, 6);
    }

    #[test]
    fn reordered_deps_keep_memos() {
        // Same theory, different slice order: the fingerprint is
        // order-insensitive, so no reset happens and warm memos survive.
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap();
        let other =
            parse_dependency("tic", "forall (t in T) -> exists (s in S) where t.B = s.B").unwrap();
        let narrower = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        let wider = parse_query("select struct(A = r.A) from R r").unwrap();
        let cfg = ChaseConfig::default();
        let mut ctx = ChaseContext::new(vec![ric.clone(), other.clone()], cfg.clone());
        assert!(ctx.contained_in(&wider, &narrower));
        let reordered = [other, ric];
        assert_eq!(
            ChaseContext::fingerprint_of(&reordered, &cfg),
            ctx.fingerprint()
        );
        assert!(!ctx.ensure_deps(&reordered, &cfg));
        assert_eq!(ctx.stats().deps_resets, 0);
        assert_eq!(ctx.stats().reorder_resets_avoided, 1);
        // The memo is still warm.
        assert!(ctx.contained_in(&wider, &narrower));
        assert!(ctx.stats().containment_hits > 0);
    }

    #[test]
    fn ensure_deps_resets_stale_contexts() {
        // A memo computed under `ric` must not survive a switch to the
        // empty theory: the containment verdict genuinely flips.
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap();
        let narrower = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        let wider = parse_query("select struct(A = r.A) from R r").unwrap();
        let cfg = ChaseConfig::default();
        let mut ctx = ChaseContext::new(vec![ric.clone()], cfg.clone());
        assert!(ctx.contained_in(&wider, &narrower));
        // Same theory: no-op, memos kept.
        assert!(!ctx.ensure_deps(std::slice::from_ref(&ric), &cfg));
        assert!(ctx.contained_in(&wider, &narrower));
        assert!(ctx.stats().containment_hits > 0);
        // Different theory: reset, and the answer is recomputed soundly.
        assert!(ctx.ensure_deps(&[], &cfg));
        assert_eq!(ctx.stats().deps_resets, 1);
        assert!(!ctx.contained_in(&wider, &narrower));
        // A different budget also forces a reset.
        let tighter = ChaseConfig {
            max_steps: 1,
            ..ChaseConfig::default()
        };
        assert!(ctx.ensure_deps(&[], &tighter));
        assert_eq!(ctx.stats().deps_resets, 2);
    }

    #[test]
    fn memo_cap_evicts_oldest_and_stays_sound() {
        let d =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        let cfg = ChaseConfig::default();
        let mut capped = ChaseContext::new(vec![d.clone()], cfg.clone()).with_memo_cap(2);
        assert_eq!(capped.memo_cap(), 2);
        let queries: Vec<_> = ["R", "S", "T", "R"]
            .iter()
            .map(|root| parse_query(&format!("select struct(A = x.A) from {root} x")).unwrap())
            .collect();
        let mut unbounded = ChaseContext::new(vec![d], cfg);
        for q in &queries {
            // Evicted entries are recomputed, never served stale: every
            // outcome matches the unbounded context's.
            assert_eq!(
                capped.chase(q).query.alpha_normalized(),
                unbounded.chase(q).query.alpha_normalized()
            );
        }
        // Three distinct queries through a cap of two: the oldest (R) was
        // evicted and its re-chase was a miss, not a hit.
        assert!(capped.stats().evictions >= 1, "{:?}", capped.stats());
        assert_eq!(capped.stats().chase_hits, 0);
        assert_eq!(capped.stats().chase_misses, 4);
        // The unbounded context served the repeat from the memo.
        assert_eq!(unbounded.stats().chase_hits, 1);
    }

    #[test]
    fn implication_memo_ignores_names_and_condition_order() {
        let key =
            parse_dependency("key", "forall (p in R) (q in R) where p.K = q.K -> p = q").unwrap();
        let g1 = parse_dependency(
            "g1",
            "forall (p in R) (q in R) where p.K = q.K -> p.B = q.B",
        )
        .unwrap();
        let g2 = parse_dependency(
            "g2",
            "forall (x in R) (y in R) where y.K = x.K -> x.B = y.B",
        )
        .unwrap();
        let mut ctx = ChaseContext::new(vec![key], ChaseConfig::default());
        assert!(ctx.implies(&g1));
        assert!(ctx.implies(&g2));
        assert_eq!(ctx.stats().implication_misses, 1);
        assert_eq!(ctx.stats().implication_hits, 1);
    }
}
