//! The chase (paper §3, phase 1).
//!
//! A chase step with `forall (x̄ in P̄) B1 -> exists (ȳ in P̄') B2` finds a
//! trigger — a homomorphism of the universal side into the query — that
//! has no extension to the existential side (the *restricted* chase), and
//! then adds the instantiated existential bindings and conclusion
//! equalities to the query:
//!
//! ```text
//! select O(r̄) from …, R1 r1, …, Rm rm, …        where … and B1 and …
//!   ~>
//! select O(r̄) from …, R1 r1, …, S1 s1, …, Sn sn where … and B1 and B2 and …
//! ```
//!
//! Chasing to a fixpoint with `D ∪ D'` yields the **universal plan**: "an
//! amalgam of all the query plans allowed by the constraints". The chase
//! may be stopped at any time and remains sound; [`ChaseConfig`] bounds
//! steps and size, and [`ChaseOutcome::complete`] reports whether a
//! fixpoint was reached.

use std::collections::BTreeMap;

use pcql::idgen::VarGen;
use pcql::path::Path;
use pcql::query::{Binding, Equality, Query};
use pcql::Dependency;

use crate::canon::QueryGraph;
use crate::hom::{extension_exists, find_matching_hom, Assignment};

/// Budgets for the chase (and for the implication checks that reuse it).
///
/// `PartialEq`/`Hash` matter: a [`ChaseContext`](crate::ChaseContext)
/// fingerprints its budget together with its dependency set, so a memo
/// computed under one budget is never served under another (a tighter
/// budget can flip a verdict from `true` to `false`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChaseConfig {
    /// Maximum number of chase steps before giving up.
    pub max_steps: usize,
    /// Maximum number of `from`-clause bindings in the chased query.
    pub max_bindings: usize,
    /// Cap on enumerated triggers per (dependency, rebuild).
    pub max_homs: usize,
    /// Coalesce congruent duplicate bindings after the fixpoint.
    pub coalesce: bool,
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            max_steps: 512,
            max_bindings: 64,
            max_homs: 4096,
            coalesce: true,
        }
    }
}

/// One applied chase step, for traces and EXPLAIN output.
#[derive(Debug, Clone)]
pub struct ChaseStepTrace {
    pub dep: String,
    /// The trigger: dependency variable -> query path.
    pub trigger: Vec<(String, String)>,
    pub added_bindings: Vec<Binding>,
    pub added_eqs: Vec<Equality>,
}

/// The result of chasing.
#[derive(Debug, Clone)]
pub struct ChaseOutcome {
    /// The chased query (the universal plan, when chasing with `D ∪ D'`).
    pub query: Query,
    /// The steps applied, in order.
    pub steps: Vec<ChaseStepTrace>,
    /// Whether a fixpoint was reached within the budgets. An incomplete
    /// chase is still sound — the query is equivalent to the input under
    /// the dependencies.
    pub complete: bool,
}

/// A resumable chase: the query chased so far, its incrementally
/// maintained canonical database, and the applied steps.
///
/// Because the chase is sound at every prefix ("we can stop this
/// rewriting anytime"), callers may interleave their own tests with
/// [`ChaseState::step`] and stop as soon as the test succeeds — the
/// containment and implication provers exit the moment a witness
/// homomorphism appears instead of confirming the full fixpoint. The
/// [`ChaseContext`](crate::ChaseContext) keeps one `ChaseState` per
/// alpha-normalized query so later checks resume where earlier ones
/// stopped.
#[derive(Debug, Clone)]
pub(crate) struct ChaseState {
    pub query: Query,
    pub graph: QueryGraph,
    pub steps: Vec<ChaseStepTrace>,
    /// Confirmed: no applicable trigger remains.
    pub fixpoint: bool,
}

impl ChaseState {
    pub fn new(q: &Query) -> ChaseState {
        ChaseState {
            query: q.clone(),
            graph: QueryGraph::of_query(q),
            steps: Vec::new(),
            fixpoint: false,
        }
    }

    /// Applies one more chase step. Returns `false` once a fixpoint is
    /// confirmed or the budget is exhausted.
    pub fn step(&mut self, deps: &[Dependency], cfg: &ChaseConfig) -> bool {
        if self.fixpoint
            || self.steps.len() >= cfg.max_steps
            || self.query.from.len() >= cfg.max_bindings
        {
            return false;
        }
        // Failpoint: a spurious Err here models a transient step failure.
        // Retrying the same step is sound (the chase is deterministic
        // given the graph), so the site recovers by simply proceeding —
        // before any mutation, so no torn state can be observed. A panic
        // configured here unwinds to the worker/ladder catch instead.
        if crate::faults::hit("chase::step").is_err() {
            crate::faults::note_recovered();
        }
        match find_applicable_in(&mut self.graph, deps, cfg) {
            None => {
                self.fixpoint = true;
                false
            }
            Some((dep_idx, h)) => {
                let trace = apply_step_in(&mut self.query, &mut self.graph, &deps[dep_idx], &h);
                self.steps.push(trace);
                true
            }
        }
    }

    /// Was a fixpoint reached (directly, or because the budget ran out
    /// with no trigger left applicable)?
    pub fn confirm_complete(&mut self, deps: &[Dependency], cfg: &ChaseConfig) -> bool {
        if self.fixpoint {
            return true;
        }
        if find_applicable_in(&mut self.graph, deps, cfg).is_none() {
            self.fixpoint = true;
        }
        self.fixpoint
    }

    /// Finalizes into a [`ChaseOutcome`] (coalescing per `cfg`).
    pub fn finalize(&mut self, deps: &[Dependency], cfg: &ChaseConfig) -> ChaseOutcome {
        let complete = self.confirm_complete(deps, cfg);
        let query = if cfg.coalesce {
            coalesce_duplicates(&self.query)
        } else {
            self.query.clone()
        };
        ChaseOutcome {
            query,
            steps: self.steps.clone(),
            complete,
        }
    }
}

/// Chases `q` with `deps` to a fixpoint (or until the budget runs out).
///
/// This is the standalone entry point; code that chases many related
/// queries (containment checks, the backchase lattice, the optimizer)
/// should go through [`ChaseContext`](crate::ChaseContext), which
/// memoizes outcomes across calls.
pub fn chase(q: &Query, deps: &[Dependency], cfg: &ChaseConfig) -> ChaseOutcome {
    let mut st = ChaseState::new(q);
    while st.step(deps, cfg) {}
    st.finalize(deps, cfg)
}

/// A single chase step with one dependency, if applicable (used by the
/// paper-example tests that chase with `c_JI` alone).
pub fn chase_step(q: &Query, dep: &Dependency, cfg: &ChaseConfig) -> Option<Query> {
    let deps = [dep.clone()];
    let mut graph = QueryGraph::of_query(q);
    let (idx, h) = find_applicable_in(&mut graph, &deps, cfg)?;
    debug_assert_eq!(idx, 0);
    let mut query = q.clone();
    apply_step_in(&mut query, &mut graph, dep, &h);
    Some(query)
}

/// Finds the first applicable (dependency, trigger) pair in deterministic
/// order: EGDs before TGDs (equalities never grow the query and often
/// satisfy pending TGD triggers, keeping the universal plan close to the
/// paper's hand-derived one), then dependencies in their given order,
/// triggers in membership-fact order. `graph` must be the canonical
/// database of the current query; triggers are searched directly on it
/// (extra interned paths from earlier searches are harmless — they never
/// introduce unions).
pub(crate) fn find_applicable_in(
    graph: &mut QueryGraph,
    deps: &[Dependency],
    cfg: &ChaseConfig,
) -> Option<(usize, Assignment)> {
    let ordered = deps
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_egd())
        .chain(deps.iter().enumerate().filter(|(_, d)| !d.is_egd()));
    for (i, dep) in ordered {
        let found = find_matching_hom(
            graph,
            &dep.forall,
            &dep.premise,
            &BTreeMap::new(),
            cfg.max_homs,
            &mut |g, h| !extension_exists(g, &dep.exists, &dep.conclusion, h),
        );
        if let Some(h) = found {
            return Some((i, h));
        }
    }
    None
}

/// Drops bindings that are congruent duplicates of earlier ones (same
/// variable class and same source class), substituting the kept variable
/// everywhere. Dependency orderings of TGD firings can leave such
/// duplicates behind once later EGDs merge their variables; removing them
/// preserves equivalence (the containment mapping is the substitution
/// itself) and keeps the universal plan at the paper's size.
pub fn coalesce_duplicates(q: &Query) -> Query {
    let mut graph = QueryGraph::of_query(q);
    let mut out = q.clone();
    loop {
        let mut subst: Option<(String, String)> = None;
        'search: for (i, b) in out.from.iter().enumerate() {
            for earlier in &out.from[..i] {
                if earlier.kind == b.kind
                    && graph
                        .egraph
                        .paths_equal(&Path::Var(earlier.var.clone()), &Path::Var(b.var.clone()))
                    && graph.egraph.paths_equal(&earlier.src, &b.src)
                {
                    subst = Some((b.var.clone(), earlier.var.clone()));
                    break 'search;
                }
            }
        }
        let Some((dup, keep)) = subst else {
            return cleanup_conditions(out);
        };
        let map: BTreeMap<String, String> = [(dup.clone(), keep)].into();
        out = Query {
            output: out.output.map_paths(&mut |p| p.rename(&map)),
            from: out
                .from
                .iter()
                .filter(|b| b.var != dup)
                .map(|b| Binding {
                    var: b.var.clone(),
                    src: b.src.rename(&map),
                    kind: b.kind,
                })
                .collect(),
            where_: out.where_.iter().map(|e| e.rename(&map)).collect(),
        };
        graph = QueryGraph::of_query(&out);
    }
}

/// Removes reflexive and duplicate conditions.
fn cleanup_conditions(mut q: Query) -> Query {
    let mut seen = std::collections::BTreeSet::new();
    q.where_
        .retain(|e| e.0 != e.1 && seen.insert(e.normalized()));
    q
}

/// Applies the step for trigger `h` of `dep` to `query`, keeping `graph`
/// (the query's canonical database) in sync incrementally.
pub(crate) fn apply_step_in(
    query: &mut Query,
    graph: &mut QueryGraph,
    dep: &Dependency,
    h: &Assignment,
) -> ChaseStepTrace {
    let trigger: Vec<(String, String)> =
        h.iter().map(|(k, v)| (k.clone(), v.to_string())).collect();
    let mut h = h.clone();
    let mut gen = VarGen::avoiding(query.from.iter().map(|b| b.var.clone()));

    let mut added_bindings = Vec::new();
    for b in &dep.exists {
        let fresh = gen.fresh(&b.var);
        let src = b.src.subst(&h);
        h.insert(b.var.clone(), Path::Var(fresh.clone()));
        let binding = Binding::iter(fresh, src);
        query.from.push(binding.clone());
        graph.add_binding(&binding);
        added_bindings.push(binding);
    }
    let mut added_eqs = Vec::new();
    for eq in &dep.conclusion {
        let inst = eq.subst(&h);
        // Skip equalities that already hold (relevant for EGD conclusions
        // partially implied by the query).
        if graph.egraph.paths_equal(&inst.0, &inst.1) {
            continue;
        }
        graph.add_equality(&inst);
        query.where_.push(inst.clone());
        added_eqs.push(inst);
    }
    ChaseStepTrace {
        dep: dep.name.clone(),
        trigger,
        added_bindings,
        added_eqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::{parse_dependency, parse_query};

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn egd_chase_adds_equality_once() {
        let q = parse_query("select struct(A = p.A) from R p, R q where p.K = q.K").unwrap();
        let key =
            parse_dependency("key", "forall (a in R) (b in R) where a.K = b.K -> a = b").unwrap();
        // Without coalescing, the EGD adds p = q to the where clause.
        let raw = chase(
            &q,
            std::slice::from_ref(&key),
            &ChaseConfig {
                coalesce: false,
                ..cfg()
            },
        );
        assert!(raw.complete);
        assert_eq!(raw.steps.len(), 1);
        assert_eq!(raw.steps[0].added_eqs.len(), 1);
        assert!(raw.query.where_.iter().any(|e| {
            (e.0 == Path::var("p") && e.1 == Path::var("q"))
                || (e.0 == Path::var("q") && e.1 == Path::var("p"))
        }));
        // With coalescing (the default), the duplicate binding collapses.
        let out = chase(&q, &[key], &cfg());
        assert_eq!(out.query.from.len(), 1);
        assert!(out.query.where_.iter().all(|e| e.0 != e.1));
    }

    #[test]
    fn tgd_chase_introduces_bindings() {
        let q = parse_query("select struct(A = r.A) from R r").unwrap();
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        let out = chase(&q, &[ric], &cfg());
        assert!(out.complete);
        assert_eq!(out.query.from.len(), 2);
        assert_eq!(out.query.from[1].src, Path::root("S"));
        assert_eq!(out.query.where_.len(), 1);
        // Re-chasing is a no-op: the constraint is now satisfied.
        let again = chase(
            &out.query,
            &[
                parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B")
                    .unwrap(),
            ],
            &cfg(),
        );
        assert_eq!(again.steps.len(), 0);
    }

    #[test]
    fn restricted_chase_terminates_on_cyclic_rics() {
        // R -> S and S -> R reference each other; the restricted chase
        // stops once both sides are witnessed.
        let q = parse_query("select struct(A = r.A) from R r").unwrap();
        let d1 =
            parse_dependency("rs", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap();
        let d2 =
            parse_dependency("sr", "forall (s in S) -> exists (r in R) where s.A = r.A").unwrap();
        let out = chase(&q, &[d1, d2], &cfg());
        assert!(out.complete, "restricted chase must terminate here");
        assert_eq!(out.query.from.len(), 2);
    }

    #[test]
    fn paper_chase_step_with_c_ji() {
        // §3's example: chasing Q with c_JI adds the JI binding and the
        // two conditions.
        let q = parse_query(
            r#"select struct(PN = s, PB = p.Budg, DN = d.DName)
               from depts d, d.DProjs s, Proj p
               where s = p.PName and p.CustName = "CitiBank""#,
        )
        .unwrap();
        let c_ji = parse_dependency(
            "c_JI",
            "forall (d in depts) (s in d.DProjs) (p in Proj) where s = p.PName \
             -> exists (j in JI) where j.DOID = d and j.PN = p.PName",
        )
        .unwrap();
        let out = chase_step(&q, &c_ji, &cfg()).expect("c_JI applies");
        assert_eq!(out.from.len(), 4);
        assert_eq!(out.from[3].src, Path::root("JI"));
        let conds: Vec<String> = out
            .where_
            .iter()
            .map(|e| format!("{} = {}", e.0, e.1))
            .collect();
        assert!(conds.contains(&"j0.DOID = d".to_string()));
        assert!(conds.contains(&"j0.PN = p.PName".to_string()));
        // A second step with the same constraint is not applicable.
        assert!(chase_step(&out, &c_ji, &cfg()).is_none());
    }

    #[test]
    fn budget_marks_incomplete() {
        // A genuinely diverging chase: every S-element spawns a new one
        // with a *different* witness requirement, so the restricted chase
        // never satisfies it. (f is "injective with no fixpoint"-style.)
        let q = parse_query("select struct(A = s.A) from S s").unwrap();
        let grow = parse_dependency(
            "grow",
            "forall (s in S) -> exists (t in S) where t.Pred = s.A",
        )
        .unwrap();
        let tight = ChaseConfig {
            max_steps: 5,
            ..ChaseConfig::default()
        };
        let out = chase(&q, &[grow], &tight);
        assert!(!out.complete);
        assert_eq!(out.steps.len(), 5);
    }

    #[test]
    fn trivial_dependency_never_fires() {
        let q = parse_query("select struct(A = r.A) from R r, S s where r.A = s.A").unwrap();
        // "forall r,s with r.A = s.A there exists s' in S with r.A = s'.A"
        // is satisfied by s itself.
        let triv = parse_dependency(
            "triv",
            "forall (r in R) (s in S) where r.A = s.A -> exists (t in S) where r.A = t.A",
        )
        .unwrap();
        let out = chase(&q, &[triv], &cfg());
        assert!(out.steps.is_empty());
        assert_eq!(out.query, q);
    }

    #[test]
    fn chase_result_is_deterministic() {
        let q = parse_query("select struct(A = r.A) from R r").unwrap();
        let deps = vec![
            parse_dependency("d1", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap(),
            parse_dependency("d2", "forall (s in S) -> exists (t in T) where s.A = t.A").unwrap(),
        ];
        let a = chase(&q, &deps, &cfg());
        let b = chase(&q, &deps, &cfg());
        assert_eq!(a.query, b.query);
        assert_eq!(a.steps.len(), b.steps.len());
    }
}
