//! Chase-termination analysis.
//!
//! The paper: "we show that while the chase does not always terminate, it
//! does so for certain classes of constraints and queries, yielding an
//! essentially unique result U whose size is polynomial." Two sufficient
//! conditions are implemented here:
//!
//! * **full dependency sets** — every existential is determined by the
//!   conclusion (view constraints `c_V` are the canonical example); the
//!   chase adds at most one binding group per trigger and triggers don't
//!   compound, giving the polynomial bound of Theorem 1;
//! * **weak acyclicity** (Fagin et al.) — adapted to path-conjunctive
//!   dependencies by abstracting each binding to its *position shape*
//!   (the source path with variables replaced by their own shapes, e.g.
//!   `depts.DProjs`, `dom(I)`, `SI[·]`). A dependency draws edges from
//!   its premise shapes to its conclusion shapes, *special* edges when
//!   the conclusion binding genuinely invents a value (undetermined
//!   existential). No cycle through a special edge ⇒ the chase
//!   terminates.
//!
//! Both checks are sufficient conditions only: the restricted chase often
//! terminates on sets that fail them (the full ProjDept constraint set
//! does — RIC1/INV2 form a special-edge cycle whose firings are always
//! satisfied in practice). [`ChaseConfig`]'s budgets remain the safety
//! net, and an incomplete chase is still sound.

use std::collections::{BTreeMap, BTreeSet};

use pcql::path::Path;
use pcql::query::Binding;
use pcql::Dependency;

/// The verdict of static termination analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationVerdict {
    /// All dependencies are full: polynomial chase (Theorem 1 regime).
    Full,
    /// Weakly acyclic: terminating, possibly exponential.
    WeaklyAcyclic,
    /// No static guarantee; rely on chase budgets.
    Unknown,
}

/// Statically classifies a dependency set.
pub fn analyze_termination(deps: &[Dependency]) -> TerminationVerdict {
    if deps.iter().all(Dependency::is_full) {
        TerminationVerdict::Full
    } else if is_weakly_acyclic(deps) {
        TerminationVerdict::WeaklyAcyclic
    } else {
        TerminationVerdict::Unknown
    }
}

/// The abstract "position" a binding ranges over: its source path with
/// each variable replaced by the shape of that variable's own source.
fn shape(src: &Path, var_shapes: &BTreeMap<String, String>) -> String {
    match src {
        Path::Var(v) => var_shapes
            .get(v)
            .cloned()
            .unwrap_or_else(|| "·".to_string()),
        Path::Const(c) => c.to_string(),
        Path::Root(r) => r.clone(),
        Path::Field(p, f) => format!("{}.{f}", shape(p, var_shapes)),
        Path::Dom(p) => format!("dom({})", shape(p, var_shapes)),
        // Keys are abstracted away: all entries of a dictionary share a
        // position.
        Path::Get(m, _) => format!("{}[·]", shape(m, var_shapes)),
        Path::GetOrEmpty(m, _) => format!("{}{{·}}", shape(m, var_shapes)),
    }
}

fn binding_shapes(bindings: &[Binding], var_shapes: &mut BTreeMap<String, String>) -> Vec<String> {
    let mut out = Vec::new();
    for b in bindings {
        let s = shape(&b.src, var_shapes);
        var_shapes.insert(b.var.clone(), s.clone());
        out.push(s);
    }
    out
}

/// Sufficient termination condition: the position graph has no cycle
/// through a special (value-inventing) edge.
pub fn is_weakly_acyclic(deps: &[Dependency]) -> bool {
    // Edges: (from, to, special).
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edges: Vec<(String, String, bool)> = Vec::new();
    for d in deps {
        let mut var_shapes = BTreeMap::new();
        let premise = binding_shapes(&d.forall, &mut var_shapes);
        let determined = d.determined_existentials();
        let conclusion = binding_shapes(&d.exists, &mut var_shapes);
        nodes.extend(premise.iter().cloned());
        nodes.extend(conclusion.iter().cloned());
        for (b, to) in d.exists.iter().zip(&conclusion) {
            let special = !determined.contains(&b.var);
            for from in &premise {
                edges.push((from.clone(), to.clone(), special));
            }
        }
    }
    // A cycle through a special edge exists iff some special edge (u, v)
    // has a path v ->* u.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to, _) in &edges {
        adj.entry(from).or_default().push(to);
    }
    let reaches = |start: &str, goal: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if n == goal {
                return true;
            }
            if seen.insert(n.to_string()) {
                if let Some(nexts) = adj.get(n) {
                    stack.extend(nexts.iter().copied());
                }
            }
        }
        false
    };
    !edges
        .iter()
        .filter(|(_, _, special)| *special)
        .any(|(from, to, _)| reaches(to, from) || from == to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_dependency;

    #[test]
    fn view_constraints_are_full() {
        let deps = vec![parse_dependency(
            "c_V",
            "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v = r.A",
        )
        .unwrap()];
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Full);
    }

    #[test]
    fn one_way_ric_is_weakly_acyclic() {
        let deps =
            vec![
                parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B")
                    .unwrap(),
            ];
        assert_eq!(
            analyze_termination(&deps),
            TerminationVerdict::WeaklyAcyclic
        );
    }

    #[test]
    fn mutual_rics_are_not_weakly_acyclic() {
        // R -> S and S -> R with fresh witnesses: the classic potentially
        // diverging set (the restricted chase happens to terminate, but
        // no static guarantee exists).
        let deps = vec![
            parse_dependency("rs", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap(),
            parse_dependency("sr", "forall (s in S) -> exists (r in R) where s.B = r.B").unwrap(),
        ];
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Unknown);
    }

    #[test]
    fn self_growing_dependency_is_not_weakly_acyclic() {
        let deps = vec![parse_dependency(
            "grow",
            "forall (s in S) -> exists (t in S) where t.Pred = s.A",
        )
        .unwrap()];
        assert!(!is_weakly_acyclic(&deps));
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Unknown);
    }

    #[test]
    fn primary_index_constraints_are_full() {
        // PI1/PI2 determine all their existentials: polynomial chase.
        let cat = {
            let mut c = cb_catalog::Catalog::new();
            c.add_logical_relation("R", [("A", pcql::Type::Int), ("B", pcql::Type::Int)]);
            c.add_direct_mapping("R");
            c.add_primary_index("I", "R", "A").unwrap();
            c
        };
        assert_eq!(
            analyze_termination(cat.mapping_constraints()),
            TerminationVerdict::Full
        );
    }

    #[test]
    fn secondary_index_set_is_only_restricted_chase_terminating() {
        // SI3 (non-emptiness) invents an entry from a key, SI2 reaches the
        // relation from entries, SI1 reaches keys from the relation — a
        // genuine special-edge cycle. The *restricted* chase terminates
        // (SI1 creates the entry that satisfies SI3), but weak acyclicity
        // cannot see that; the verdict is honestly Unknown.
        let cat = {
            let mut c = cb_catalog::Catalog::new();
            c.add_logical_relation("R", [("A", pcql::Type::Int), ("B", pcql::Type::Int)]);
            c.add_direct_mapping("R");
            c.add_secondary_index("SB", "R", "B").unwrap();
            c
        };
        assert_eq!(
            analyze_termination(cat.mapping_constraints()),
            TerminationVerdict::Unknown
        );
        // Empirically the restricted chase reaches a fixpoint anyway.
        let q = pcql::parser::parse_query("select struct(A = r.A) from R r").unwrap();
        let out = crate::chase::chase(
            &q,
            &cat.all_constraints(),
            &crate::chase::ChaseConfig::default(),
        );
        assert!(out.complete);
    }

    #[test]
    fn projdept_full_set_has_no_static_guarantee() {
        // RIC1 + INV2 form a special-edge cycle (each invents the other's
        // witnesses); the restricted chase still terminates in practice —
        // the verdict is honest about being only a sufficient condition.
        let cat = cb_catalog::scenarios::projdept::catalog();
        assert_eq!(
            analyze_termination(&cat.all_constraints()),
            TerminationVerdict::Unknown
        );
    }

    #[test]
    fn egds_never_block_termination() {
        let deps =
            vec![
                parse_dependency("key", "forall (p in R) (q in R) where p.A = q.A -> p = q")
                    .unwrap(),
            ];
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Full);
    }
}
