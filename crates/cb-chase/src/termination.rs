//! Chase-termination analysis.
//!
//! The paper: "we show that while the chase does not always terminate, it
//! does so for certain classes of constraints and queries, yielding an
//! essentially unique result U whose size is polynomial." Two sufficient
//! conditions are implemented here:
//!
//! * **full dependency sets** — every existential is determined by the
//!   conclusion (view constraints `c_V` are the canonical example); the
//!   chase adds at most one binding group per trigger and triggers don't
//!   compound, giving the polynomial bound of Theorem 1;
//! * **weak acyclicity** (Fagin et al.) — adapted to path-conjunctive
//!   dependencies by abstracting each binding to its *position shape*
//!   (the source path with variables replaced by their own shapes, e.g.
//!   `depts.DProjs`, `dom(I)`, `SI[·]`). A dependency draws edges from
//!   its premise shapes to its conclusion shapes, *special* edges when
//!   the conclusion binding genuinely invents a value (undetermined
//!   existential). No cycle through a special edge ⇒ the chase
//!   terminates.
//!
//! Both checks are sufficient conditions only: the restricted chase often
//! terminates on sets that fail them (the full ProjDept constraint set
//! does — RIC1/INV2 form a special-edge cycle whose firings are always
//! satisfied in practice). [`ChaseConfig`]'s budgets remain the safety
//! net, and an incomplete chase is still sound.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use pcql::path::Path;
use pcql::query::Binding;
use pcql::Dependency;

/// The verdict of static termination analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationVerdict {
    /// All dependencies are full: polynomial chase (Theorem 1 regime).
    Full,
    /// Weakly acyclic: terminating, possibly exponential.
    WeaklyAcyclic,
    /// No static guarantee; rely on chase budgets.
    Unknown,
}

impl std::fmt::Display for TerminationVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerminationVerdict::Full => write!(f, "full (polynomial chase, Theorem 1)"),
            TerminationVerdict::WeaklyAcyclic => write!(f, "weakly acyclic (terminating)"),
            TerminationVerdict::Unknown => write!(f, "unknown (budget-bounded chase)"),
        }
    }
}

/// Statically classifies a dependency set.
pub fn analyze_termination(deps: &[Dependency]) -> TerminationVerdict {
    analyze_termination_with_witness(deps).0
}

/// [`analyze_termination`] plus, when the verdict is
/// [`TerminationVerdict::Unknown`], the position-graph cycle that defeated
/// weak acyclicity — the evidence a diagnostic can point at instead of a
/// bare verdict.
pub fn analyze_termination_with_witness(
    deps: &[Dependency],
) -> (TerminationVerdict, Option<CycleWitness>) {
    if deps.iter().all(Dependency::is_full) {
        return (TerminationVerdict::Full, None);
    }
    match weak_acyclicity_witness(deps) {
        None => (TerminationVerdict::WeaklyAcyclic, None),
        witness => (TerminationVerdict::Unknown, witness),
    }
}

/// A special-edge cycle of the position graph: the concrete reason weak
/// acyclicity fails for a dependency set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness {
    /// The position shapes along the cycle, in order; the edge from the
    /// last position back to the first closes the cycle. The first edge
    /// (`positions[0] -> positions[1]`, or the self-loop when there is a
    /// single position) is the special, value-inventing one.
    pub positions: Vec<String>,
    /// Names of the dependencies contributing edges on the cycle (sorted,
    /// deduplicated).
    pub dependencies: Vec<String>,
}

impl std::fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut around = self.positions.clone();
        if let Some(first) = self.positions.first() {
            around.push(first.clone());
        }
        write!(
            f,
            "special-edge cycle {} via {{{}}}",
            around.join(" -> "),
            self.dependencies.join(", ")
        )
    }
}

/// The abstract "position" a binding ranges over: its source path with
/// each variable replaced by the shape of that variable's own source.
fn shape(src: &Path, var_shapes: &BTreeMap<String, String>) -> String {
    match src {
        Path::Var(v) => var_shapes
            .get(v)
            .cloned()
            .unwrap_or_else(|| "·".to_string()),
        Path::Const(c) => c.to_string(),
        Path::Root(r) => r.clone(),
        Path::Field(p, f) => format!("{}.{f}", shape(p, var_shapes)),
        Path::Dom(p) => format!("dom({})", shape(p, var_shapes)),
        // Keys are abstracted away: all entries of a dictionary share a
        // position.
        Path::Get(m, _) => format!("{}[·]", shape(m, var_shapes)),
        Path::GetOrEmpty(m, _) => format!("{}{{·}}", shape(m, var_shapes)),
    }
}

fn binding_shapes(bindings: &[Binding], var_shapes: &mut BTreeMap<String, String>) -> Vec<String> {
    let mut out = Vec::new();
    for b in bindings {
        let s = shape(&b.src, var_shapes);
        var_shapes.insert(b.var.clone(), s.clone());
        out.push(s);
    }
    out
}

/// One position-graph edge: premise shape to conclusion shape, tagged
/// with the dependency that draws it and whether the conclusion binding
/// invents a value.
struct PositionEdge {
    from: String,
    to: String,
    special: bool,
    dep: String,
}

fn position_edges(deps: &[Dependency]) -> Vec<PositionEdge> {
    let mut edges = Vec::new();
    for d in deps {
        let mut var_shapes = BTreeMap::new();
        let premise = binding_shapes(&d.forall, &mut var_shapes);
        let determined = d.determined_existentials();
        let conclusion = binding_shapes(&d.exists, &mut var_shapes);
        for (b, to) in d.exists.iter().zip(&conclusion) {
            let special = !determined.contains(&b.var);
            for from in &premise {
                edges.push(PositionEdge {
                    from: from.clone(),
                    to: to.clone(),
                    special,
                    dep: d.name.clone(),
                });
            }
        }
    }
    edges
}

/// Sufficient termination condition: the position graph has no cycle
/// through a special (value-inventing) edge.
pub fn is_weakly_acyclic(deps: &[Dependency]) -> bool {
    weak_acyclicity_witness(deps).is_none()
}

/// The witness when weak acyclicity fails: a cycle through a special edge
/// exists iff some special edge (u, v) has a path v ->* u, and this
/// returns that cycle (shortest return path, first offending special edge
/// in dependency order) with the dependencies drawing its edges.
pub fn weak_acyclicity_witness(deps: &[Dependency]) -> Option<CycleWitness> {
    let edges = position_edges(deps);
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    // BFS with parent links so the witness path is shortest.
    let shortest_path = |start: &str, goal: &str| -> Option<Vec<String>> {
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: VecDeque<&str> = VecDeque::from([start]);
        let mut seen: BTreeSet<&str> = BTreeSet::from([start]);
        while let Some(n) = queue.pop_front() {
            if n == goal {
                let mut path = vec![n.to_string()];
                let mut cur = n;
                while let Some(&p) = parent.get(cur) {
                    path.push(p.to_string());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &next in adj.get(n).into_iter().flatten() {
                if seen.insert(next) {
                    parent.insert(next, n);
                    queue.push_back(next);
                }
            }
        }
        None
    };
    for e in edges.iter().filter(|e| e.special) {
        let path = if e.from == e.to {
            Some(vec![e.to.clone()])
        } else {
            shortest_path(&e.to, &e.from)
        };
        let Some(path) = path else { continue };
        // Cycle positions: the special edge's source, then the return
        // path without its final node (which is that same source again).
        let mut positions = vec![e.from.clone()];
        positions.extend(path[..path.len() - 1].iter().cloned());
        let mut dep_names: BTreeSet<String> = BTreeSet::new();
        for i in 0..positions.len() {
            let (a, b) = (&positions[i], &positions[(i + 1) % positions.len()]);
            dep_names.extend(
                edges
                    .iter()
                    .filter(|e| &e.from == a && &e.to == b)
                    .map(|e| e.dep.clone()),
            );
        }
        return Some(CycleWitness {
            positions,
            dependencies: dep_names.into_iter().collect(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_dependency;

    #[test]
    fn view_constraints_are_full() {
        let deps = vec![parse_dependency(
            "c_V",
            "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v = r.A",
        )
        .unwrap()];
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Full);
    }

    #[test]
    fn one_way_ric_is_weakly_acyclic() {
        let deps =
            vec![
                parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B")
                    .unwrap(),
            ];
        assert_eq!(
            analyze_termination(&deps),
            TerminationVerdict::WeaklyAcyclic
        );
    }

    #[test]
    fn mutual_rics_are_not_weakly_acyclic() {
        // R -> S and S -> R with fresh witnesses: the classic potentially
        // diverging set (the restricted chase happens to terminate, but
        // no static guarantee exists).
        let deps = vec![
            parse_dependency("rs", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap(),
            parse_dependency("sr", "forall (s in S) -> exists (r in R) where s.B = r.B").unwrap(),
        ];
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Unknown);
    }

    #[test]
    fn self_growing_dependency_is_not_weakly_acyclic() {
        let deps = vec![parse_dependency(
            "grow",
            "forall (s in S) -> exists (t in S) where t.Pred = s.A",
        )
        .unwrap()];
        assert!(!is_weakly_acyclic(&deps));
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Unknown);
    }

    #[test]
    fn primary_index_constraints_are_full() {
        // PI1/PI2 determine all their existentials: polynomial chase.
        let cat = {
            let mut c = cb_catalog::Catalog::new();
            c.add_logical_relation("R", [("A", pcql::Type::Int), ("B", pcql::Type::Int)]);
            c.add_direct_mapping("R");
            c.add_primary_index("I", "R", "A").unwrap();
            c
        };
        assert_eq!(
            analyze_termination(cat.mapping_constraints()),
            TerminationVerdict::Full
        );
    }

    #[test]
    fn secondary_index_set_is_only_restricted_chase_terminating() {
        // SI3 (non-emptiness) invents an entry from a key, SI2 reaches the
        // relation from entries, SI1 reaches keys from the relation — a
        // genuine special-edge cycle. The *restricted* chase terminates
        // (SI1 creates the entry that satisfies SI3), but weak acyclicity
        // cannot see that; the verdict is honestly Unknown.
        let cat = {
            let mut c = cb_catalog::Catalog::new();
            c.add_logical_relation("R", [("A", pcql::Type::Int), ("B", pcql::Type::Int)]);
            c.add_direct_mapping("R");
            c.add_secondary_index("SB", "R", "B").unwrap();
            c
        };
        assert_eq!(
            analyze_termination(cat.mapping_constraints()),
            TerminationVerdict::Unknown
        );
        // Empirically the restricted chase reaches a fixpoint anyway.
        let q = pcql::parser::parse_query("select struct(A = r.A) from R r").unwrap();
        let out = crate::chase::chase(
            &q,
            &cat.all_constraints(),
            &crate::chase::ChaseConfig::default(),
        );
        assert!(out.complete);
    }

    #[test]
    fn projdept_full_set_has_no_static_guarantee() {
        // RIC1 + INV2 form a special-edge cycle (each invents the other's
        // witnesses); the restricted chase still terminates in practice —
        // the verdict is honest about being only a sufficient condition.
        let cat = cb_catalog::scenarios::projdept::catalog();
        assert_eq!(
            analyze_termination(&cat.all_constraints()),
            TerminationVerdict::Unknown
        );
    }

    #[test]
    fn mutual_ric_witness_names_both_dependencies() {
        let deps = vec![
            parse_dependency("rs", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap(),
            parse_dependency("sr", "forall (s in S) -> exists (r in R) where s.B = r.B").unwrap(),
        ];
        let (verdict, witness) = analyze_termination_with_witness(&deps);
        assert_eq!(verdict, TerminationVerdict::Unknown);
        let w = witness.unwrap();
        assert_eq!(w.positions, vec!["R".to_string(), "S".to_string()]);
        assert_eq!(w.dependencies, vec!["rs".to_string(), "sr".to_string()]);
        let shown = w.to_string();
        assert!(shown.contains("R -> S -> R"), "{shown}");
    }

    #[test]
    fn self_growing_witness_is_a_self_loop() {
        let deps = vec![parse_dependency(
            "grow",
            "forall (s in S) -> exists (t in S) where t.Pred = s.A",
        )
        .unwrap()];
        let w = weak_acyclicity_witness(&deps).unwrap();
        assert_eq!(w.positions, vec!["S".to_string()]);
        assert_eq!(w.dependencies, vec!["grow".to_string()]);
    }

    #[test]
    fn terminating_sets_have_no_witness() {
        let deps =
            vec![
                parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B")
                    .unwrap(),
            ];
        assert!(weak_acyclicity_witness(&deps).is_none());
        let (verdict, witness) = analyze_termination_with_witness(&deps);
        assert_eq!(verdict, TerminationVerdict::WeaklyAcyclic);
        assert!(witness.is_none());
    }

    #[test]
    fn projdept_witness_blames_the_inventing_constraints() {
        let cat = cb_catalog::scenarios::projdept::catalog();
        let w = weak_acyclicity_witness(&cat.all_constraints()).unwrap();
        assert!(!w.positions.is_empty());
        // The blamed dependencies really exist in the catalog.
        let names: BTreeSet<String> = cat
            .all_constraints()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        for dep in &w.dependencies {
            assert!(names.contains(dep), "unknown dependency `{dep}` blamed");
        }
    }

    #[test]
    fn egds_never_block_termination() {
        let deps =
            vec![
                parse_dependency("key", "forall (p in R) (q in R) where p.A = q.A -> p = q")
                    .unwrap(),
            ];
        assert_eq!(analyze_termination(&deps), TerminationVerdict::Full);
    }
}
