//! The parallel backchase: [`PlanSearch`](crate::PlanSearch)'s lattice
//! walk run by N workers over one shared priority frontier.
//!
//! The sequential walk's only serialization point is its `BinaryHeap`
//! pop; everything in between — the visitor's verdict (costing), the
//! candidate construction, condition pruning, and the two containment
//! proofs — is per-node work. So the parallel driver keeps exactly the
//! sequential node protocol and moves only its bookkeeping behind one
//! mutex (`Progress`): workers pop the cheapest frontier entry, run the
//! visit verdict and the child verification *outside* the lock against a
//! [`SharedChaseContext`], and push verified children back. A condvar
//! parks idle workers; the search is over when the frontier is empty and
//! no worker is mid-expansion (`active == 0`).
//!
//! Three bits of the sequential walk need care under concurrency:
//!
//! * **The `seen` map** gets a fourth state, `Pending`: a worker claims a
//!   child removal set *before* verifying it, so no candidate is verified
//!   twice. Because a popped node's normal-form judgement may depend on a
//!   child another worker is still verifying, judgements are deferred:
//!   each expansion records its children's keys, and normal forms are
//!   resolved after the workers join (every claimed child is resolved by
//!   its claimant before it exits, so no `Pending` survives a completed
//!   search).
//! * **Witness-hom seeding** carries the parent's witness in the frontier
//!   entry (as sequentially), but each worker validates it against its
//!   own `hom_graph`; chase states live in the shared core, whose
//!   checkout protocol falls back to a fresh search when another worker
//!   holds the parent's memo — out-of-order parent/child arrival can cost
//!   duplicate work, never a wrong verdict.
//! * **Budgets** ([`SearchBudget`] and `max_visited`) count *committed*
//!   nodes — visited plus reserved-by-a-worker — so a node budget is
//!   exact at any worker count, not just approached from below.
//!
//! With `threads = 1` the walk degenerates to the sequential one: one
//! worker, the same (priority, seq) pop order, the same seen-map
//! transitions, the same counters.
//!
//! **Fault tolerance.** Each worker's per-node expansion runs inside
//! `catch_unwind`; everything the expansion holds mid-flight (its
//! reservation, its `active` slot, the node it popped, the children it
//! claimed `Pending`) is tracked in an [`InFlight`] ledger *outside* the
//! unwind boundary. A panic — injected through the `parallel::*`
//! failpoints or genuine — rolls the ledger back: claimed children
//! return to unclaimed so survivors re-claim them, the popped node goes
//! back on the frontier (its visit count reverted if already recorded),
//! and the worker dies, counted in [`SearchOutcome::workers_died`]. The
//! remaining workers finish the identical search; if *every* worker
//! dies, `run` returns `complete = false` with work still on the
//! frontier and the optimizer's degradation ladder falls back to the
//! sequential walk.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use pcql::path::Path;
use pcql::query::Query;

use crate::backchase::{
    dependent_closure, prune_unsafe_conditions, subquery_for, Frontier, SearchBudget,
    SearchOutcome, Visit,
};
use crate::canon::QueryGraph;
use crate::containment::output_matching_hom;
use crate::faults;
use crate::hom::Assignment;
use crate::shared::{SharedChaseContext, SharedProver};

/// A [`SearchVisitor`](crate::SearchVisitor) for the parallel walk:
/// shared across workers (`&self`, `Sync`), with the per-worker
/// [`SharedProver`] handed into [`ParallelVisitor::visit`] so a costing
/// visitor can still run memoized proofs. The semantics of the three
/// hooks are identical to the sequential trait's.
pub trait ParallelVisitor: Sync {
    /// Called once per equivalence-verified node (by whichever worker
    /// popped it). The verdict steers the search exactly as in the
    /// sequential walk; [`Visit::Accept`] stops every worker.
    fn visit(
        &self,
        _prover: &mut SharedProver<'_>,
        _q: &Query,
        _removed: &BTreeSet<String>,
    ) -> Visit {
        Visit::Explore
    }

    /// The pre-verification admission gate (see
    /// [`SearchVisitor::admit`](crate::SearchVisitor::admit)). A
    /// cost-guided implementation reads the atomically published
    /// incumbent here, so one worker's improvement prunes every worker's
    /// candidates.
    fn admit(&self, _q: &Query, _removed: &BTreeSet<String>) -> bool {
        true
    }

    /// Exploration priority — lower pops first, ties in discovery order.
    fn priority(&self, _q: &Query, _removed: &BTreeSet<String>) -> f64 {
        0.0
    }
}

/// The always-explore parallel visitor (exhaustive enumeration).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelExploreAll;

impl ParallelVisitor for ParallelExploreAll {}

/// What became of a removal set in the parallel walk.
#[derive(Clone, Copy, PartialEq)]
enum NodeState {
    /// A verified equivalent subquery (enqueued once).
    Valid,
    /// Not a subquery / unsafe / not equivalent.
    Invalid,
    /// Skipped by the visitor's gate before verification.
    Gated,
    /// Claimed by a worker, verification in flight.
    Pending,
}

/// The lock-guarded search state every worker shares.
struct Progress {
    queue: BinaryHeap<Frontier>,
    seen: BTreeMap<BTreeSet<String>, NodeState>,
    seq: usize,
    /// Workers between pop and end-of-expansion (termination detection).
    active: usize,
    /// Nodes popped but not yet counted visited (exact budget accounting).
    reserved: usize,
    visited_count: usize,
    pruned_at_visit: usize,
    pruned_at_gate: usize,
    visited: Vec<Query>,
    /// (node, child removal sets) per expansion, for the deferred
    /// normal-form resolution.
    expansions: Vec<(Query, Vec<BTreeSet<String>>)>,
    stop: bool,
    complete: bool,
    accepted: bool,
    budget_expired: bool,
    /// Workers that died to a caught panic (their claims were rolled
    /// back and re-claimed by the survivors).
    workers_died: usize,
}

/// Everything a mid-expansion worker holds, tracked *outside* the
/// `catch_unwind` boundary so a panic can be rolled back to a
/// consistent `Progress`: the reservation and `active` slot it counts
/// for, the frontier node it popped (re-pushed on abandon, its visit
/// count reverted if already recorded), and the child removal sets it
/// claimed `Pending` (returned to unclaimed so survivors re-claim).
struct InFlight {
    node: Option<Frontier>,
    reserved: bool,
    active: bool,
    counted: bool,
    claims: Vec<BTreeSet<String>>,
}

/// The parallel counterpart of [`PlanSearch`](crate::PlanSearch): the
/// same lattice, the same verification discipline, N workers. See the
/// module docs for the concurrency protocol.
pub struct ParallelPlanSearch<'a> {
    u: &'a Query,
    threads: usize,
    max_visited: usize,
    budget: SearchBudget,
    collect_visited: bool,
}

impl<'a> ParallelPlanSearch<'a> {
    /// A search over the subquery lattice of `u` (which should already be
    /// chased) with `threads` workers. Unlimited by default.
    pub fn new(u: &'a Query, threads: usize) -> ParallelPlanSearch<'a> {
        ParallelPlanSearch {
            u,
            threads: threads.max(1),
            max_visited: 0,
            budget: SearchBudget::default(),
            collect_visited: true,
        }
    }

    /// Bounds the number of visited nodes (0 = unlimited).
    pub fn with_max_visited(mut self, max_visited: usize) -> ParallelPlanSearch<'a> {
        self.max_visited = max_visited;
        self
    }

    /// Sets an anytime [`SearchBudget`] (the root is always visited).
    pub fn with_budget(mut self, budget: SearchBudget) -> ParallelPlanSearch<'a> {
        self.budget = budget;
        self
    }

    /// Disables cloning each visited node into `SearchOutcome::visited`.
    pub fn with_collect_visited(mut self, collect: bool) -> ParallelPlanSearch<'a> {
        self.collect_visited = collect;
        self
    }

    /// Runs the search. `visited` order is whatever order workers counted
    /// nodes in — deterministic only at `threads = 1`; the *sets* of
    /// visited nodes and normal forms are thread-count-independent for an
    /// exhaustive (non-pruning, non-accepting, unbudgeted) visitor.
    pub fn run<V: ParallelVisitor>(
        &self,
        shared: &SharedChaseContext,
        visitor: &V,
    ) -> SearchOutcome {
        let u = self.u;
        let start = Instant::now();
        let identity: Assignment = u
            .from
            .iter()
            .map(|b| (b.var.clone(), Path::Var(b.var.clone())))
            .collect();
        let mut seen = BTreeMap::new();
        seen.insert(BTreeSet::new(), NodeState::Valid);
        let mut queue = BinaryHeap::new();
        queue.push(Frontier {
            prio: visitor.priority(u, &BTreeSet::new()),
            seq: 0,
            removed: BTreeSet::new(),
            query: u.clone(),
            hom: identity,
        });
        let progress = Mutex::new(Progress {
            queue,
            seen,
            seq: 0,
            active: 0,
            reserved: 0,
            visited_count: 0,
            pruned_at_visit: 0,
            pruned_at_gate: 0,
            visited: Vec::new(),
            expansions: Vec::new(),
            stop: false,
            complete: true,
            accepted: false,
            budget_expired: false,
            workers_died: 0,
        });
        let idle = Condvar::new();
        // Workers inherit a thread-scoped fault schedule (a no-op token
        // under global or disarmed faults).
        let fault_token = faults::inherit_token();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    faults::adopt(fault_token);
                    self.worker(shared, visitor, &progress, &idle, start);
                });
            }
        });
        let mut p = progress
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        // Every worker died with work still on the frontier: the search
        // is incomplete (the ladder falls back to the sequential walk).
        if !p.stop && !p.queue.is_empty() {
            p.complete = false;
        }
        // Deferred normal-form resolution: a node is minimal iff every
        // child removal set resolved Invalid. Gated or still-Pending
        // children (the latter only after an early stop) leave the node's
        // minimality undetermined — same rule as the sequential walk.
        let mut normal_forms = Vec::new();
        for (q, children) in &p.expansions {
            let mut reduced = false;
            let mut undetermined = false;
            for key in children {
                match p.seen.get(key) {
                    Some(NodeState::Valid) => reduced = true,
                    Some(NodeState::Invalid) => {}
                    _ => undetermined = true,
                }
            }
            if !reduced && !undetermined {
                normal_forms.push(q.clone());
            }
        }
        SearchOutcome {
            normal_forms,
            visited: p.visited,
            visited_count: p.visited_count,
            complete: p.complete,
            pruned_at_visit: p.pruned_at_visit,
            pruned_at_gate: p.pruned_at_gate,
            accepted: p.accepted,
            budget_expired: p.budget_expired,
            workers_died: p.workers_died,
        }
    }

    fn worker<V: ParallelVisitor>(
        &self,
        shared: &SharedChaseContext,
        visitor: &V,
        progress: &Mutex<Progress>,
        idle: &Condvar,
        start: Instant,
    ) {
        let lock = || -> MutexGuard<'_, Progress> {
            progress.lock().unwrap_or_else(PoisonError::into_inner)
        };
        // Failpoint: a fault here is a worker that dies on startup — the
        // survivors absorb its share of the frontier. Caught so the scope
        // join never observes the payload.
        let died_at_spawn = match catch_unwind(|| faults::hit("parallel::spawn")) {
            Ok(Ok(())) => false,
            Ok(Err(_)) => {
                faults::note_recovered();
                true
            }
            Err(payload) => {
                if faults::is_injected_panic(payload.as_ref()) {
                    faults::note_recovered();
                }
                true
            }
        };
        if died_at_spawn {
            let mut p = lock();
            p.workers_died += 1;
            idle.notify_all();
            return;
        }
        let u = self.u;
        let mut prover = shared.prover();
        // Worker-local graphs, same roles as the sequential walk's pair.
        let mut graph = QueryGraph::of_query(u);
        let mut hom_graph = graph.clone();
        loop {
            // Acquire a node (or learn the search is over).
            let node = {
                let mut p = lock();
                loop {
                    if p.stop {
                        return;
                    }
                    if p.queue.is_empty() {
                        if p.active == 0 {
                            p.stop = true;
                            idle.notify_all();
                            return;
                        }
                        p = idle.wait(p).unwrap_or_else(PoisonError::into_inner);
                        continue;
                    }
                    // Budgets count committed nodes (visited + popped by a
                    // worker) so they are exact at any thread count; the
                    // root (committed == 0) is always exempt.
                    let committed = p.visited_count + p.reserved;
                    if self.max_visited > 0 && committed >= self.max_visited {
                        p.complete = false;
                        p.stop = true;
                        idle.notify_all();
                        return;
                    }
                    if committed > 0 && self.budget.expired(start, committed) {
                        p.complete = false;
                        p.budget_expired = true;
                        p.stop = true;
                        idle.notify_all();
                        return;
                    }
                    p.reserved += 1;
                    p.active += 1;
                    break p.queue.pop().expect("frontier non-empty");
                }
            };

            // The expansion runs unwind-isolated; `flight` (outside the
            // boundary) ledgers everything it holds so a panic rolls back
            // to a consistent frontier.
            let mut flight = InFlight {
                node: Some(node),
                reserved: true,
                active: true,
                counted: false,
                claims: Vec::new(),
            };
            let expanded = catch_unwind(AssertUnwindSafe(|| {
                self.expand(
                    shared,
                    visitor,
                    progress,
                    idle,
                    &mut flight,
                    &mut prover,
                    &mut graph,
                    &mut hom_graph,
                );
            }));
            if let Err(payload) = expanded {
                // The expansion died mid-flight (an injected fault or a
                // genuine bug): roll its ledger back so the survivors
                // re-claim everything it held, then let this worker die —
                // its prover and local graphs may be torn.
                self.abandon(progress, idle, flight);
                if faults::is_injected_panic(payload.as_ref()) {
                    faults::note_recovered();
                }
                return;
            }
        }
    }

    /// One node's visit verdict + expansion — the unwind-isolated part of
    /// the worker loop. `flight` is updated under the same lock
    /// acquisitions that update `Progress`, so the ledger always matches
    /// what the shared state believes this worker holds.
    #[allow(clippy::too_many_arguments)]
    fn expand<V: ParallelVisitor>(
        &self,
        shared: &SharedChaseContext,
        visitor: &V,
        progress: &Mutex<Progress>,
        idle: &Condvar,
        flight: &mut InFlight,
        prover: &mut SharedProver<'_>,
        graph: &mut QueryGraph,
        hom_graph: &mut QueryGraph,
    ) {
        let u = self.u;
        let lock = || -> MutexGuard<'_, Progress> {
            progress.lock().unwrap_or_else(PoisonError::into_inner)
        };
        // Failpoints: the pop just happened (outside the lock), and the
        // visit verdict is about to run. Both spots are pure control
        // flow, so a transient error recovers by proceeding; a panic
        // unwinds to the worker's catch.
        if faults::hit("parallel::pop").is_err() {
            faults::note_recovered();
        }
        if faults::hit("parallel::visit").is_err() {
            faults::note_recovered();
        }

        // The visit verdict (costing, pruning) runs outside the lock.
        let verdict = {
            let node = flight.node.as_ref().expect("in-flight node");
            visitor.visit(prover, &node.query, &node.removed)
        };
        let explore = {
            let mut p = lock();
            p.reserved -= 1;
            flight.reserved = false;
            let node = flight.node.as_ref().expect("in-flight node");
            let explore = match verdict {
                Visit::Prune => {
                    p.pruned_at_visit += 1;
                    false
                }
                Visit::Explore => {
                    p.visited_count += 1;
                    flight.counted = true;
                    if self.collect_visited {
                        p.visited.push(node.query.clone());
                    }
                    !p.stop
                }
                Visit::Accept => {
                    p.visited_count += 1;
                    if self.collect_visited {
                        p.visited.push(node.query.clone());
                    }
                    p.accepted = true;
                    p.stop = true;
                    false
                }
            };
            if !explore {
                // Fully handled (pruned, accepted, or racing a stop):
                // nothing left for a rollback to revert.
                flight.node = None;
                flight.counted = false;
                flight.active = false;
                p.active -= 1;
                if p.queue.is_empty() && p.active == 0 {
                    p.stop = true;
                }
                idle.notify_all();
            }
            explore
        };
        if !explore {
            return;
        }

        // Expand: claim each child removal set, verify the claimed
        // ones outside the lock, record the keys for the deferred
        // normal-form resolution.
        let (parent_removed, parent_hom) = {
            let node = flight.node.as_ref().expect("in-flight node");
            (node.removed.clone(), node.hom.clone())
        };
        let mut child_keys: Vec<BTreeSet<String>> = Vec::new();
        for b in &u.from {
            if parent_removed.contains(&b.var) {
                continue;
            }
            let mut grown = parent_removed.clone();
            grown.insert(b.var.clone());
            let grown = dependent_closure(u, graph, grown);
            // Failpoint: a child claim is about to happen (outside the
            // lock); transient errors recover by proceeding.
            if faults::hit("parallel::claim").is_err() {
                faults::note_recovered();
            }
            let claimed = {
                let mut p = lock();
                if p.seen.contains_key(&grown) {
                    false
                } else {
                    p.seen.insert(grown.clone(), NodeState::Pending);
                    flight.claims.push(grown.clone());
                    true
                }
            };
            child_keys.push(grown.clone());
            if !claimed {
                continue;
            }
            let mut gated = false;
            let child = subquery_for(u, graph, &grown)
                .and_then(|q2| prune_unsafe_conditions(prover, &q2))
                .and_then(|q2| {
                    if !visitor.admit(&q2, &grown) {
                        gated = true;
                        return None;
                    }
                    // u ⊑ q2, seeded from the parent's witness; the
                    // seed travels in the frontier entry, so it is
                    // available even when the parent's chase memo is
                    // checked out elsewhere.
                    let seed: Assignment = parent_hom
                        .iter()
                        .filter(|&(v, _)| q2.from.iter().any(|b2| b2.var == *v))
                        .map(|(v, p)| (v.clone(), p.clone()))
                        .collect();
                    let h2 =
                        output_matching_hom(hom_graph, &u.output, &q2, shared.cfg(), Some(&seed))?;
                    if h2 == seed {
                        shared.note_seeded_hom();
                    }
                    // …and q2 ⊑ u through the sharded memo.
                    if shared.contained_in(&q2, u) {
                        Some((q2, h2))
                    } else {
                        None
                    }
                });
            match child {
                Some((q2, h2)) => {
                    let prio = visitor.priority(&q2, &grown);
                    let mut p = lock();
                    flight.claims.retain(|k| k != &grown);
                    p.seen.insert(grown.clone(), NodeState::Valid);
                    if !p.stop {
                        p.seq += 1;
                        let seq = p.seq;
                        p.queue.push(Frontier {
                            prio,
                            seq,
                            removed: grown,
                            query: q2,
                            hom: h2,
                        });
                        idle.notify_all();
                    }
                }
                None => {
                    let mut p = lock();
                    flight.claims.retain(|k| k != &grown);
                    if gated {
                        p.pruned_at_gate += 1;
                    }
                    p.seen.insert(
                        grown,
                        if gated {
                            NodeState::Gated
                        } else {
                            NodeState::Invalid
                        },
                    );
                }
            }
        }
        {
            let mut p = lock();
            let node = flight.node.take().expect("in-flight node");
            p.expansions.push((node.query, child_keys));
            flight.counted = false;
            flight.active = false;
            p.active -= 1;
            if p.queue.is_empty() && p.active == 0 {
                p.stop = true;
            }
            idle.notify_all();
        }
    }

    /// Rolls a panicked expansion's ledger back under the progress lock:
    /// un-claims its `Pending` children, re-enqueues its popped node
    /// (reverting the visit count if it was already recorded), releases
    /// its reservation and `active` slot, and counts the death. Every
    /// claim the dead worker held becomes claimable again, so the
    /// surviving workers finish the identical search.
    fn abandon(&self, progress: &Mutex<Progress>, idle: &Condvar, flight: InFlight) {
        let mut p = progress.lock().unwrap_or_else(PoisonError::into_inner);
        if flight.reserved {
            p.reserved -= 1;
        }
        if flight.active {
            p.active -= 1;
        }
        for key in flight.claims {
            if p.seen.get(&key) == Some(&NodeState::Pending) {
                p.seen.remove(&key);
            }
        }
        if let Some(node) = flight.node {
            if flight.counted {
                p.visited_count -= 1;
                if let Some(i) = p.visited.iter().rposition(|q| *q == node.query) {
                    p.visited.swap_remove(i);
                }
            }
            p.seq += 1;
            let seq = p.seq;
            p.queue.push(Frontier { seq, ..node });
        }
        p.workers_died += 1;
        if p.queue.is_empty() && p.active == 0 {
            p.stop = true;
        }
        idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backchase::{ExploreAll, PlanSearch};
    use crate::chase::ChaseConfig;
    use crate::context::ChaseContext;
    use pcql::parser::{parse_dependency, parse_query};
    use pcql::Dependency;
    use std::time::Duration;

    fn view_scenario() -> (Query, Vec<Dependency>) {
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let deps = vec![
            parse_dependency(
                "c_V",
                "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
            )
            .unwrap(),
            parse_dependency(
                "c'_V",
                "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
            )
            .unwrap(),
        ];
        (u, deps)
    }

    fn norm(qs: &[Query]) -> Vec<Query> {
        let mut v: Vec<Query> = qs.iter().map(Query::alpha_normalized).collect();
        v.sort();
        v
    }

    #[test]
    fn parallel_exhaustive_matches_sequential_at_every_thread_count() {
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let sequential = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads).run(&shared, &ParallelExploreAll);
            assert!(out.complete, "incomplete @ {threads} threads");
            assert!(!out.budget_expired);
            assert_eq!(
                norm(&out.visited),
                norm(&sequential.visited),
                "visited set @ {threads} threads"
            );
            assert_eq!(
                norm(&out.normal_forms),
                norm(&sequential.normal_forms),
                "normal forms @ {threads} threads"
            );
            assert_eq!(out.visited_count, sequential.visited_count);
        }
    }

    #[test]
    fn parallel_node_budget_is_exact_and_keeps_the_root() {
        let (u, deps) = view_scenario();
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads)
                .with_budget(SearchBudget {
                    nodes: Some(0),
                    ..SearchBudget::default()
                })
                .run(&shared, &ParallelExploreAll);
            assert!(out.budget_expired);
            assert_eq!(out.visited_count, 1, "root only @ {threads} threads");
            assert_eq!(out.visited[0].alpha_normalized(), u.alpha_normalized());
        }
        // A mid-search budget is exact, not approximate, at any width.
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads)
                .with_budget(SearchBudget {
                    nodes: Some(2),
                    ..SearchBudget::default()
                })
                .run(&shared, &ParallelExploreAll);
            assert!(out.budget_expired);
            assert_eq!(out.visited_count, 2, "exact budget @ {threads} threads");
        }
    }

    #[test]
    fn parallel_zero_wall_clock_budget_returns_the_root() {
        let (u, deps) = view_scenario();
        let shared = SharedChaseContext::new(deps, ChaseConfig::default());
        let out = ParallelPlanSearch::new(&u, 4)
            .with_budget(SearchBudget {
                wall_clock: Some(Duration::ZERO),
                ..SearchBudget::default()
            })
            .run(&shared, &ParallelExploreAll);
        assert!(out.budget_expired);
        assert_eq!(out.visited_count, 1);
    }

    #[test]
    fn parallel_max_visited_matches_sequential_truncation() {
        let (u, deps) = view_scenario();
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads)
                .with_max_visited(1)
                .run(&shared, &ParallelExploreAll);
            assert!(!out.complete);
            assert!(!out.budget_expired);
            assert_eq!(out.visited_count, 1);
        }
    }

    #[test]
    fn injected_worker_panic_is_recovered_by_the_survivors() {
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let sequential = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        for threads in [2, 4] {
            // The second popped node panics its worker mid-expansion; the
            // rollback re-enqueues it and the survivors finish the
            // identical search.
            let _guard = faults::ScopedFaults::install("parallel::pop=panic@2").unwrap();
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads).run(&shared, &ParallelExploreAll);
            assert!(out.complete, "complete @ {threads} threads");
            assert_eq!(out.workers_died, 1, "@ {threads} threads");
            assert_eq!(norm(&out.visited), norm(&sequential.visited));
            assert_eq!(norm(&out.normal_forms), norm(&sequential.normal_forms));
            assert_eq!(out.visited_count, sequential.visited_count);
            let fs = faults::stats();
            assert_eq!(fs.injected, 1);
            assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
        }
    }

    #[test]
    fn panic_mid_proof_rolls_back_the_visit_count() {
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let sequential = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        // A panic deep inside a containment proof (a chase step) fires
        // *after* the node was counted visited — the rollback must revert
        // the count so the surviving worker's recount lands exactly once.
        let _guard = faults::ScopedFaults::install("chase::step=panic@3").unwrap();
        let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
        let out = ParallelPlanSearch::new(&u, 2).run(&shared, &ParallelExploreAll);
        assert!(out.complete);
        assert_eq!(out.workers_died, 1);
        assert_eq!(norm(&out.visited), norm(&sequential.visited));
        assert_eq!(norm(&out.normal_forms), norm(&sequential.normal_forms));
        assert_eq!(out.visited_count, sequential.visited_count);
        let fs = faults::stats();
        assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
    }

    #[test]
    fn every_worker_dying_leaves_an_incomplete_search_not_a_hang() {
        let (u, deps) = view_scenario();
        let _guard = faults::ScopedFaults::install("parallel::spawn=panic").unwrap();
        let shared = SharedChaseContext::new(deps, ChaseConfig::default());
        let out = ParallelPlanSearch::new(&u, 4).run(&shared, &ParallelExploreAll);
        assert!(!out.complete, "work left on the frontier");
        assert_eq!(out.workers_died, 4);
        assert_eq!(out.visited_count, 0);
        let fs = faults::stats();
        assert_eq!(fs.injected, 4);
        assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
    }

    #[test]
    fn transient_errors_at_parallel_sites_recover_by_proceeding() {
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let sequential = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        let _guard = faults::ScopedFaults::install(
            "parallel::pop=err*2;parallel::claim=err*3;parallel::visit=err*2;parallel::spawn=err@2",
        )
        .unwrap();
        let shared = SharedChaseContext::new(deps, ChaseConfig::default());
        let out = ParallelPlanSearch::new(&u, 4).run(&shared, &ParallelExploreAll);
        assert!(out.complete);
        // The spawn error killed one worker before it started; the
        // transient errors elsewhere were absorbed in place.
        assert_eq!(out.workers_died, 1);
        assert_eq!(norm(&out.visited), norm(&sequential.visited));
        assert_eq!(out.visited_count, sequential.visited_count);
        let fs = faults::stats();
        assert!(fs.injected >= 1);
        assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
    }

    #[test]
    fn parallel_accept_stops_every_worker() {
        struct AcceptSmall;
        impl ParallelVisitor for AcceptSmall {
            fn visit(&self, _: &mut SharedProver<'_>, q: &Query, _: &BTreeSet<String>) -> Visit {
                if q.from.len() <= 2 {
                    Visit::Accept
                } else {
                    Visit::Explore
                }
            }
        }
        let (u, deps) = view_scenario();
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads).run(&shared, &AcceptSmall);
            assert!(out.accepted, "accepted @ {threads} threads");
            // Whatever worker accepted, its plan is in the visited set.
            assert!(out.visited.iter().any(|q| q.from.len() <= 2));
        }
    }
}
