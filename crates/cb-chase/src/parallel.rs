//! The parallel backchase: [`PlanSearch`](crate::PlanSearch)'s lattice
//! walk run by N workers over one shared priority frontier.
//!
//! The sequential walk's only serialization point is its `BinaryHeap`
//! pop; everything in between — the visitor's verdict (costing), the
//! candidate construction, condition pruning, and the two containment
//! proofs — is per-node work. So the parallel driver keeps exactly the
//! sequential node protocol and moves only its bookkeeping behind one
//! mutex (`Progress`): workers pop the cheapest frontier entry, run the
//! visit verdict and the child verification *outside* the lock against a
//! [`SharedChaseContext`], and push verified children back. A condvar
//! parks idle workers; the search is over when the frontier is empty and
//! no worker is mid-expansion (`active == 0`).
//!
//! Three bits of the sequential walk need care under concurrency:
//!
//! * **The `seen` map** gets a fourth state, `Pending`: a worker claims a
//!   child removal set *before* verifying it, so no candidate is verified
//!   twice. Because a popped node's normal-form judgement may depend on a
//!   child another worker is still verifying, judgements are deferred:
//!   each expansion records its children's keys, and normal forms are
//!   resolved after the workers join (every claimed child is resolved by
//!   its claimant before it exits, so no `Pending` survives a completed
//!   search).
//! * **Witness-hom seeding** carries the parent's witness in the frontier
//!   entry (as sequentially), but each worker validates it against its
//!   own `hom_graph`; chase states live in the shared core, whose
//!   checkout protocol falls back to a fresh search when another worker
//!   holds the parent's memo — out-of-order parent/child arrival can cost
//!   duplicate work, never a wrong verdict.
//! * **Budgets** ([`SearchBudget`] and `max_visited`) count *committed*
//!   nodes — visited plus reserved-by-a-worker — so a node budget is
//!   exact at any worker count, not just approached from below.
//!
//! With `threads = 1` the walk degenerates to the sequential one: one
//! worker, the same (priority, seq) pop order, the same seen-map
//! transitions, the same counters.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use pcql::path::Path;
use pcql::query::Query;

use crate::backchase::{
    dependent_closure, prune_unsafe_conditions, subquery_for, Frontier, SearchBudget,
    SearchOutcome, Visit,
};
use crate::canon::QueryGraph;
use crate::containment::output_matching_hom;
use crate::hom::Assignment;
use crate::shared::{SharedChaseContext, SharedProver};

/// A [`SearchVisitor`](crate::SearchVisitor) for the parallel walk:
/// shared across workers (`&self`, `Sync`), with the per-worker
/// [`SharedProver`] handed into [`ParallelVisitor::visit`] so a costing
/// visitor can still run memoized proofs. The semantics of the three
/// hooks are identical to the sequential trait's.
pub trait ParallelVisitor: Sync {
    /// Called once per equivalence-verified node (by whichever worker
    /// popped it). The verdict steers the search exactly as in the
    /// sequential walk; [`Visit::Accept`] stops every worker.
    fn visit(
        &self,
        _prover: &mut SharedProver<'_>,
        _q: &Query,
        _removed: &BTreeSet<String>,
    ) -> Visit {
        Visit::Explore
    }

    /// The pre-verification admission gate (see
    /// [`SearchVisitor::admit`](crate::SearchVisitor::admit)). A
    /// cost-guided implementation reads the atomically published
    /// incumbent here, so one worker's improvement prunes every worker's
    /// candidates.
    fn admit(&self, _q: &Query, _removed: &BTreeSet<String>) -> bool {
        true
    }

    /// Exploration priority — lower pops first, ties in discovery order.
    fn priority(&self, _q: &Query, _removed: &BTreeSet<String>) -> f64 {
        0.0
    }
}

/// The always-explore parallel visitor (exhaustive enumeration).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelExploreAll;

impl ParallelVisitor for ParallelExploreAll {}

/// What became of a removal set in the parallel walk.
#[derive(Clone, Copy, PartialEq)]
enum NodeState {
    /// A verified equivalent subquery (enqueued once).
    Valid,
    /// Not a subquery / unsafe / not equivalent.
    Invalid,
    /// Skipped by the visitor's gate before verification.
    Gated,
    /// Claimed by a worker, verification in flight.
    Pending,
}

/// The lock-guarded search state every worker shares.
struct Progress {
    queue: BinaryHeap<Frontier>,
    seen: BTreeMap<BTreeSet<String>, NodeState>,
    seq: usize,
    /// Workers between pop and end-of-expansion (termination detection).
    active: usize,
    /// Nodes popped but not yet counted visited (exact budget accounting).
    reserved: usize,
    visited_count: usize,
    pruned_at_visit: usize,
    pruned_at_gate: usize,
    visited: Vec<Query>,
    /// (node, child removal sets) per expansion, for the deferred
    /// normal-form resolution.
    expansions: Vec<(Query, Vec<BTreeSet<String>>)>,
    stop: bool,
    complete: bool,
    accepted: bool,
    budget_expired: bool,
}

/// The parallel counterpart of [`PlanSearch`](crate::PlanSearch): the
/// same lattice, the same verification discipline, N workers. See the
/// module docs for the concurrency protocol.
pub struct ParallelPlanSearch<'a> {
    u: &'a Query,
    threads: usize,
    max_visited: usize,
    budget: SearchBudget,
    collect_visited: bool,
}

impl<'a> ParallelPlanSearch<'a> {
    /// A search over the subquery lattice of `u` (which should already be
    /// chased) with `threads` workers. Unlimited by default.
    pub fn new(u: &'a Query, threads: usize) -> ParallelPlanSearch<'a> {
        ParallelPlanSearch {
            u,
            threads: threads.max(1),
            max_visited: 0,
            budget: SearchBudget::default(),
            collect_visited: true,
        }
    }

    /// Bounds the number of visited nodes (0 = unlimited).
    pub fn with_max_visited(mut self, max_visited: usize) -> ParallelPlanSearch<'a> {
        self.max_visited = max_visited;
        self
    }

    /// Sets an anytime [`SearchBudget`] (the root is always visited).
    pub fn with_budget(mut self, budget: SearchBudget) -> ParallelPlanSearch<'a> {
        self.budget = budget;
        self
    }

    /// Disables cloning each visited node into `SearchOutcome::visited`.
    pub fn with_collect_visited(mut self, collect: bool) -> ParallelPlanSearch<'a> {
        self.collect_visited = collect;
        self
    }

    /// Runs the search. `visited` order is whatever order workers counted
    /// nodes in — deterministic only at `threads = 1`; the *sets* of
    /// visited nodes and normal forms are thread-count-independent for an
    /// exhaustive (non-pruning, non-accepting, unbudgeted) visitor.
    pub fn run<V: ParallelVisitor>(
        &self,
        shared: &SharedChaseContext,
        visitor: &V,
    ) -> SearchOutcome {
        let u = self.u;
        let start = Instant::now();
        let identity: Assignment = u
            .from
            .iter()
            .map(|b| (b.var.clone(), Path::Var(b.var.clone())))
            .collect();
        let mut seen = BTreeMap::new();
        seen.insert(BTreeSet::new(), NodeState::Valid);
        let mut queue = BinaryHeap::new();
        queue.push(Frontier {
            prio: visitor.priority(u, &BTreeSet::new()),
            seq: 0,
            removed: BTreeSet::new(),
            query: u.clone(),
            hom: identity,
        });
        let progress = Mutex::new(Progress {
            queue,
            seen,
            seq: 0,
            active: 0,
            reserved: 0,
            visited_count: 0,
            pruned_at_visit: 0,
            pruned_at_gate: 0,
            visited: Vec::new(),
            expansions: Vec::new(),
            stop: false,
            complete: true,
            accepted: false,
            budget_expired: false,
        });
        let idle = Condvar::new();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| self.worker(shared, visitor, &progress, &idle, start));
            }
        });
        let p = progress.into_inner().expect("search worker panicked");
        // Deferred normal-form resolution: a node is minimal iff every
        // child removal set resolved Invalid. Gated or still-Pending
        // children (the latter only after an early stop) leave the node's
        // minimality undetermined — same rule as the sequential walk.
        let mut normal_forms = Vec::new();
        for (q, children) in &p.expansions {
            let mut reduced = false;
            let mut undetermined = false;
            for key in children {
                match p.seen.get(key) {
                    Some(NodeState::Valid) => reduced = true,
                    Some(NodeState::Invalid) => {}
                    _ => undetermined = true,
                }
            }
            if !reduced && !undetermined {
                normal_forms.push(q.clone());
            }
        }
        SearchOutcome {
            normal_forms,
            visited: p.visited,
            visited_count: p.visited_count,
            complete: p.complete,
            pruned_at_visit: p.pruned_at_visit,
            pruned_at_gate: p.pruned_at_gate,
            accepted: p.accepted,
            budget_expired: p.budget_expired,
        }
    }

    fn worker<V: ParallelVisitor>(
        &self,
        shared: &SharedChaseContext,
        visitor: &V,
        progress: &Mutex<Progress>,
        idle: &Condvar,
        start: Instant,
    ) {
        let u = self.u;
        let mut prover = shared.prover();
        // Worker-local graphs, same roles as the sequential walk's pair.
        let mut graph = QueryGraph::of_query(u);
        let mut hom_graph = graph.clone();
        let lock =
            || -> MutexGuard<'_, Progress> { progress.lock().expect("search lock poisoned") };
        loop {
            // Acquire a node (or learn the search is over).
            let node = {
                let mut p = lock();
                loop {
                    if p.stop {
                        return;
                    }
                    if p.queue.is_empty() {
                        if p.active == 0 {
                            p.stop = true;
                            idle.notify_all();
                            return;
                        }
                        p = idle.wait(p).expect("search lock poisoned");
                        continue;
                    }
                    // Budgets count committed nodes (visited + popped by a
                    // worker) so they are exact at any thread count; the
                    // root (committed == 0) is always exempt.
                    let committed = p.visited_count + p.reserved;
                    if self.max_visited > 0 && committed >= self.max_visited {
                        p.complete = false;
                        p.stop = true;
                        idle.notify_all();
                        return;
                    }
                    if committed > 0 && self.budget.expired(start, committed) {
                        p.complete = false;
                        p.budget_expired = true;
                        p.stop = true;
                        idle.notify_all();
                        return;
                    }
                    p.reserved += 1;
                    p.active += 1;
                    break p.queue.pop().expect("frontier non-empty");
                }
            };

            // The visit verdict (costing, pruning) runs outside the lock.
            let verdict = visitor.visit(&mut prover, &node.query, &node.removed);
            let explore = {
                let mut p = lock();
                p.reserved -= 1;
                let explore = match verdict {
                    Visit::Prune => {
                        p.pruned_at_visit += 1;
                        false
                    }
                    Visit::Explore => {
                        p.visited_count += 1;
                        if self.collect_visited {
                            p.visited.push(node.query.clone());
                        }
                        !p.stop
                    }
                    Visit::Accept => {
                        p.visited_count += 1;
                        if self.collect_visited {
                            p.visited.push(node.query.clone());
                        }
                        p.accepted = true;
                        p.stop = true;
                        false
                    }
                };
                if !explore {
                    p.active -= 1;
                    if p.queue.is_empty() && p.active == 0 {
                        p.stop = true;
                    }
                    idle.notify_all();
                }
                explore
            };
            if !explore {
                continue;
            }

            // Expand: claim each child removal set, verify the claimed
            // ones outside the lock, record the keys for the deferred
            // normal-form resolution.
            let mut child_keys: Vec<BTreeSet<String>> = Vec::new();
            for b in &u.from {
                if node.removed.contains(&b.var) {
                    continue;
                }
                let mut grown = node.removed.clone();
                grown.insert(b.var.clone());
                let grown = dependent_closure(u, &mut graph, grown);
                let claimed = {
                    let mut p = lock();
                    if p.seen.contains_key(&grown) {
                        false
                    } else {
                        p.seen.insert(grown.clone(), NodeState::Pending);
                        true
                    }
                };
                child_keys.push(grown.clone());
                if !claimed {
                    continue;
                }
                let mut gated = false;
                let child = subquery_for(u, &mut graph, &grown)
                    .and_then(|q2| prune_unsafe_conditions(&mut prover, &q2))
                    .and_then(|q2| {
                        if !visitor.admit(&q2, &grown) {
                            gated = true;
                            return None;
                        }
                        // u ⊑ q2, seeded from the parent's witness; the
                        // seed travels in the frontier entry, so it is
                        // available even when the parent's chase memo is
                        // checked out elsewhere.
                        let seed: Assignment = node
                            .hom
                            .iter()
                            .filter(|&(v, _)| q2.from.iter().any(|b2| b2.var == *v))
                            .map(|(v, p)| (v.clone(), p.clone()))
                            .collect();
                        let h2 = output_matching_hom(
                            &mut hom_graph,
                            &u.output,
                            &q2,
                            shared.cfg(),
                            Some(&seed),
                        )?;
                        if h2 == seed {
                            shared.note_seeded_hom();
                        }
                        // …and q2 ⊑ u through the sharded memo.
                        if shared.contained_in(&q2, u) {
                            Some((q2, h2))
                        } else {
                            None
                        }
                    });
                match child {
                    Some((q2, h2)) => {
                        let prio = visitor.priority(&q2, &grown);
                        let mut p = lock();
                        p.seen.insert(grown.clone(), NodeState::Valid);
                        if !p.stop {
                            p.seq += 1;
                            let seq = p.seq;
                            p.queue.push(Frontier {
                                prio,
                                seq,
                                removed: grown,
                                query: q2,
                                hom: h2,
                            });
                            idle.notify_all();
                        }
                    }
                    None => {
                        let mut p = lock();
                        if gated {
                            p.pruned_at_gate += 1;
                        }
                        p.seen.insert(
                            grown,
                            if gated {
                                NodeState::Gated
                            } else {
                                NodeState::Invalid
                            },
                        );
                    }
                }
            }
            {
                let mut p = lock();
                p.expansions.push((node.query, child_keys));
                p.active -= 1;
                if p.queue.is_empty() && p.active == 0 {
                    p.stop = true;
                }
                idle.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backchase::{ExploreAll, PlanSearch};
    use crate::chase::ChaseConfig;
    use crate::context::ChaseContext;
    use pcql::parser::{parse_dependency, parse_query};
    use pcql::Dependency;
    use std::time::Duration;

    fn view_scenario() -> (Query, Vec<Dependency>) {
        let u = parse_query(
            "select struct(A = r.A) from R r, S s, V v \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let deps = vec![
            parse_dependency(
                "c_V",
                "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
            )
            .unwrap(),
            parse_dependency(
                "c'_V",
                "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
            )
            .unwrap(),
        ];
        (u, deps)
    }

    fn norm(qs: &[Query]) -> Vec<Query> {
        let mut v: Vec<Query> = qs.iter().map(Query::alpha_normalized).collect();
        v.sort();
        v
    }

    #[test]
    fn parallel_exhaustive_matches_sequential_at_every_thread_count() {
        let (u, deps) = view_scenario();
        let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
        let sequential = PlanSearch::new(&u).run(&mut ctx, &mut ExploreAll);
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads).run(&shared, &ParallelExploreAll);
            assert!(out.complete, "incomplete @ {threads} threads");
            assert!(!out.budget_expired);
            assert_eq!(
                norm(&out.visited),
                norm(&sequential.visited),
                "visited set @ {threads} threads"
            );
            assert_eq!(
                norm(&out.normal_forms),
                norm(&sequential.normal_forms),
                "normal forms @ {threads} threads"
            );
            assert_eq!(out.visited_count, sequential.visited_count);
        }
    }

    #[test]
    fn parallel_node_budget_is_exact_and_keeps_the_root() {
        let (u, deps) = view_scenario();
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads)
                .with_budget(SearchBudget {
                    nodes: Some(0),
                    ..SearchBudget::default()
                })
                .run(&shared, &ParallelExploreAll);
            assert!(out.budget_expired);
            assert_eq!(out.visited_count, 1, "root only @ {threads} threads");
            assert_eq!(out.visited[0].alpha_normalized(), u.alpha_normalized());
        }
        // A mid-search budget is exact, not approximate, at any width.
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads)
                .with_budget(SearchBudget {
                    nodes: Some(2),
                    ..SearchBudget::default()
                })
                .run(&shared, &ParallelExploreAll);
            assert!(out.budget_expired);
            assert_eq!(out.visited_count, 2, "exact budget @ {threads} threads");
        }
    }

    #[test]
    fn parallel_zero_wall_clock_budget_returns_the_root() {
        let (u, deps) = view_scenario();
        let shared = SharedChaseContext::new(deps, ChaseConfig::default());
        let out = ParallelPlanSearch::new(&u, 4)
            .with_budget(SearchBudget {
                wall_clock: Some(Duration::ZERO),
                ..SearchBudget::default()
            })
            .run(&shared, &ParallelExploreAll);
        assert!(out.budget_expired);
        assert_eq!(out.visited_count, 1);
    }

    #[test]
    fn parallel_max_visited_matches_sequential_truncation() {
        let (u, deps) = view_scenario();
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads)
                .with_max_visited(1)
                .run(&shared, &ParallelExploreAll);
            assert!(!out.complete);
            assert!(!out.budget_expired);
            assert_eq!(out.visited_count, 1);
        }
    }

    #[test]
    fn parallel_accept_stops_every_worker() {
        struct AcceptSmall;
        impl ParallelVisitor for AcceptSmall {
            fn visit(&self, _: &mut SharedProver<'_>, q: &Query, _: &BTreeSet<String>) -> Visit {
                if q.from.len() <= 2 {
                    Visit::Accept
                } else {
                    Visit::Explore
                }
            }
        }
        let (u, deps) = view_scenario();
        for threads in [1, 2, 4] {
            let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
            let out = ParallelPlanSearch::new(&u, threads).run(&shared, &AcceptSmall);
            assert!(out.accepted, "accepted @ {threads} threads");
            // Whatever worker accepted, its plan is in the visited set.
            assert!(out.visited.iter().any(|q| q.from.len() <= 2));
        }
    }
}
