//! Constraint implication via the chase: `D ⊨ σ`.
//!
//! The paper ("Trying to see whether [the constraint] of condition (3) is
//! implied by the existing constraints can actually be done with the chase
//! … when constraints are viewed as boolean-valued queries"): freeze σ's
//! universal side as a canonical query, chase it with `D`, and check that
//! σ's conclusion has a homomorphic witness in the result.
//!
//! Sound always; complete whenever the chase reaches a fixpoint (in
//! particular for full dependencies). An incomplete chase makes the test
//! conservative (may answer `false` for an implied constraint), which
//! preserves the soundness of every backchase step built on it.

use std::collections::BTreeMap;

use pcql::path::Path;
use pcql::query::{Output, Query};
use pcql::Dependency;

use crate::chase::{ChaseConfig, ChaseState};
use crate::context::ChaseContext;
use crate::hom::extension_exists;

/// Does `deps ⊨ sigma` (as far as the bounded chase can tell)?
///
/// Thin wrapper allocating a throwaway [`ChaseContext`]; the backchase
/// and the optimizer route their (heavily repetitive) proof obligations
/// through a shared context, which memoizes verdicts on a canonicalized
/// `sigma`.
pub fn implies(deps: &[Dependency], sigma: &Dependency, cfg: &ChaseConfig) -> bool {
    ChaseContext::new(deps.to_vec(), cfg.clone()).implies(sigma)
}

/// The uncached prover: freeze σ's universal side as a canonical query,
/// chase it with `deps`, and look for a homomorphic witness of the
/// conclusion — testing after *every* step, because the chase only ever
/// adds facts (no coalescing happens mid-chase), so a witness found
/// early persists to the fixpoint and the remaining steps are moot.
pub(crate) fn implies_uncached(deps: &[Dependency], sigma: &Dependency, cfg: &ChaseConfig) -> bool {
    // The premise of σ, frozen as a query ("viewed as a boolean query").
    let premise = Query::new(
        Output::record(Vec::<(String, Path)>::new()),
        sigma.forall.clone(),
        sigma.premise.clone(),
    );
    // The universal variables are mapped to themselves: the conclusion
    // check pins them by name, which is sound because the step-wise
    // chase only adds, never renames.
    let init: BTreeMap<String, Path> = sigma
        .forall
        .iter()
        .map(|b| (b.var.clone(), Path::Var(b.var.clone())))
        .collect();
    let mut st = ChaseState::new(&premise);
    loop {
        if extension_exists(&mut st.graph, &sigma.exists, &sigma.conclusion, &init) {
            return true;
        }
        if !st.step(deps, cfg) {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_dependency;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn self_implication() {
        let d =
            parse_dependency("d", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap();
        assert!(implies(std::slice::from_ref(&d), &d, &cfg()));
    }

    #[test]
    fn trivial_constraints_hold_without_deps() {
        // The tableau-minimization constraint of paper §3:
        // forall p,q with p.B = q.A there exists r in R with q.B = r.B —
        // witnessed by q itself? No: needs r with q.B = r.B, and q works
        // as r only if q.B = q.B — which is reflexively true.
        let triv = parse_dependency(
            "triv",
            "forall (p in R) (q in R) where p.B = q.A \
             -> exists (r in R) where p.B = q.A and q.B = r.B",
        )
        .unwrap();
        assert!(implies(&[], &triv, &cfg()));

        let nontriv = parse_dependency(
            "nontriv",
            "forall (p in R) -> exists (r in R) where p.B = r.A",
        )
        .unwrap();
        assert!(!implies(&[], &nontriv, &cfg()));
    }

    #[test]
    fn transitive_implication_through_chase() {
        // R ⊆ S and S ⊆ T imply R ⊆ T (membership encoded via key
        // equality).
        let d1 =
            parse_dependency("d1", "forall (r in R) -> exists (s in S) where r.K = s.K").unwrap();
        let d2 =
            parse_dependency("d2", "forall (s in S) -> exists (t in T) where s.K = t.K").unwrap();
        let goal =
            parse_dependency("goal", "forall (r in R) -> exists (t in T) where r.K = t.K").unwrap();
        assert!(implies(&[d1.clone(), d2.clone()], &goal, &cfg()));
        assert!(!implies(&[d1], &goal, &cfg()));
    }

    #[test]
    fn egd_reasoning() {
        // Key on R plus matching keys implies field equality.
        let key =
            parse_dependency("key", "forall (p in R) (q in R) where p.K = q.K -> p = q").unwrap();
        let goal = parse_dependency(
            "goal",
            "forall (p in R) (q in R) where p.K = q.K -> p.B = q.B",
        )
        .unwrap();
        assert!(implies(&[key], &goal, &cfg()));
        assert!(!implies(&[], &goal, &cfg()));
    }

    #[test]
    fn view_unfolding_implication() {
        // c'_V : every view tuple comes from the join; then every view
        // tuple's A value appears in R.
        let c_v_prime = parse_dependency(
            "c'_V",
            "forall (v in V) -> exists (r in R) (s in S) \
             where r.B = s.B and v.A = r.A",
        )
        .unwrap();
        let goal =
            parse_dependency("goal", "forall (v in V) -> exists (r in R) where v.A = r.A").unwrap();
        assert!(implies(&[c_v_prime], &goal, &cfg()));
    }

    #[test]
    fn paper_p2_justification() {
        // Removing d, s from the ProjDept query is justified by RIC2 +
        // INV2 (+ the INV1-derived condition): forall p in Proj there are
        // d in depts, s in d.DProjs with s = p.PName and d.DName = p.PDept.
        let ric2 = parse_dependency(
            "RIC2",
            "forall (p in Proj) -> exists (d in depts) where p.PDept = d.DName",
        )
        .unwrap();
        let inv2 = parse_dependency(
            "INV2",
            "forall (p in Proj) (d in depts) where p.PDept = d.DName \
             -> exists (s in d.DProjs) where p.PName = s",
        )
        .unwrap();
        let goal = parse_dependency(
            "goal",
            "forall (p in Proj) -> exists (d in depts) (s in d.DProjs) \
             where s = p.PName and d.DName = p.PDept",
        )
        .unwrap();
        assert!(implies(&[ric2.clone(), inv2.clone()], &goal, &cfg()));
        // Neither constraint alone suffices.
        assert!(!implies(&[ric2], &goal, &cfg()));
        assert!(!implies(&[inv2], &goal, &cfg()));
    }
}
