//! # universal-plans
//!
//! A from-scratch Rust implementation of the chase & backchase (C&B)
//! optimization framework of
//!
//! > Alin Deutsch, Lucian Popa, Val Tannen.
//! > *Physical Data Independence, Constraints and Optimization with
//! > Universal Plans.* VLDB 1999.
//!
//! The crate is an umbrella over the workspace members:
//!
//! * [`pcql`] — the path-conjunctive query language: complex-object data
//!   model (records, sets, dictionaries, classes/OIDs), queries, EPCD
//!   constraints, parser and type checker;
//! * [`catalog`](cb_catalog) — logical/physical schemas and the encoding
//!   of physical access structures (indexes, materialized views, join
//!   indexes, access support relations, gmaps, …) as constraints;
//! * [`chase`](cb_chase) — the chase and backchase engines, containment,
//!   and generalized tableau minimization;
//! * [`engine`](cb_engine) — an in-memory set-semantics evaluator, access
//!   structure materializer, constraint checker and data generators;
//! * [`optimizer`](cb_optimizer) — Algorithm 1 of the paper: chase to a
//!   universal plan, enumerate minimal plans by backchase, choose by cost;
//! * [`analyze`](cb_analyze) — the static verifier and lint layer:
//!   well-formedness, lookup safety, chase termination, and dataflow
//!   verification of compiled pipelines, reported as stable `CB0xx`
//!   diagnostics.
//!
//! ## Quickstart
//!
//! ```
//! use universal_plans::prelude::*;
//!
//! // Logical schema: a relation R(A, B, C).
//! let mut catalog = Catalog::new();
//! catalog.add_logical_relation(
//!     "R",
//!     [("A", Type::Int), ("B", Type::Int), ("C", Type::Int)],
//! );
//! // Physical schema: R itself plus a secondary index on A.
//! catalog.add_direct_mapping("R");
//! catalog.add_secondary_index("SA", "R", "A").unwrap();
//!
//! let q = parse_query("select struct(C = r.C) from R r where r.A = 5").unwrap();
//! let best = Optimizer::new(&catalog).optimize(&q).unwrap();
//! // The winning plan scans SI entries for key 5 instead of all of R.
//! assert!(best.best.query.to_string().contains("SA"));
//! ```

pub use cb_analyze as analyze;
pub use cb_catalog as catalog;
pub use cb_chase as chase;
pub use cb_engine as engine;
pub use cb_optimizer as optimizer;
pub use pcql;

/// One-stop imports for examples, tests and downstream users.
pub mod prelude {
    pub use cb_analyze::{Analyzer, Report};
    pub use cb_catalog::{AccessStructure, Catalog};
    pub use cb_chase::{
        backchase, chase, contained_in, equivalent, implies, minimize, ChaseConfig,
    };
    pub use cb_engine::{Evaluator, Instance, Materializer, Value};
    pub use cb_optimizer::{CostModel, Optimizer};
    pub use pcql::prelude::*;
}
