//! Offline stand-in for the `criterion` crate. Implements the API subset
//! used by this workspace's benches: enough to compile them, run a short
//! timed loop per benchmark, and print mean wall-clock times. No warm-up
//! modelling, statistics, or HTML reports.
//!
//! Iteration counts can be controlled with the `CRITERION_STUB_ITERS`
//! environment variable (default: up to `sample_size` iterations or 200 ms
//! per benchmark, whichever comes first). When `CRITERION_STUB_JSON` names
//! a file, `criterion_main!` additionally writes every benchmark's
//! iteration count and median/mean wall-clock time there as JSON, so bench
//! runs can land in `BENCH_*.json` records without parsing stdout.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver standing in for criterion's `Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.default_sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies a benchmark as a function name plus a parameter value.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Hands the routine under measurement to the timing loop.
pub struct Bencher {
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        let mut prev = Duration::ZERO;
        while iters < self.max_iters {
            black_box(routine());
            iters += 1;
            let now = start.elapsed();
            self.samples.push(now - prev);
            prev = now;
            if now > budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's measured result, as recorded for the JSON report.
struct Record {
    id: String,
    iters: u64,
    median_ns: f64,
    mean_ns: f64,
}

/// Results of every benchmark run so far in this process, in run order.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let max_iters = std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(sample_size as u64)
        .max(1);
    let mut b = Bencher {
        max_iters,
        iters: 0,
        elapsed: Duration::ZERO,
        samples: Vec::new(),
    };
    f(&mut b);
    let mean_ns = if b.iters > 0 {
        b.elapsed.as_secs_f64() * 1e9 / b.iters as f64
    } else {
        0.0
    };
    let median_ns = if b.samples.is_empty() {
        0.0
    } else {
        b.samples.sort_unstable();
        let n = b.samples.len();
        if n % 2 == 1 {
            b.samples[n / 2].as_secs_f64() * 1e9
        } else {
            (b.samples[n / 2 - 1] + b.samples[n / 2]).as_secs_f64() * 1e9 / 2.0
        }
    };
    println!(
        "bench {id:60} {:>6} iters  median {:10.3} ms  mean {:10.3} ms",
        b.iters,
        median_ns / 1e6,
        mean_ns / 1e6
    );
    RECORDS.lock().unwrap().push(Record {
        id: id.to_string(),
        iters: b.iters,
        median_ns,
        mean_ns,
    });
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every recorded benchmark result to the file named by
/// `CRITERION_STUB_JSON`, if set. Called by the `criterion_main!`-generated
/// `main` after all groups have run; a no-op otherwise.
pub fn write_json_report(suite: &str) {
    let Ok(path) = std::env::var("CRITERION_STUB_JSON") else {
        return;
    };
    let records = RECORDS.lock().unwrap();
    let mut s = String::new();
    s.push_str(&format!("{{\"suite\": \"{}\",", json_escape(suite)));
    s.push_str(" \"results\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"id\": \"{}\", \"iters\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            json_escape(&r.id),
            r.iters,
            r.median_ns,
            r.mean_ns
        ));
    }
    s.push_str("]}\n");
    if let Err(e) = std::fs::write(&path, s) {
        eprintln!("criterion stub: cannot write {path}: {e}");
    }
}

/// Collects benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, then writing the JSON
/// report if `CRITERION_STUB_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // A single test: the env var is process-global and tests run in
    // parallel threads, so setting it from two tests would race.
    #[test]
    fn bench_functions_run_routines() {
        std::env::set_var("CRITERION_STUB_ITERS", "3");
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("t/count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);

        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = 0i64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7i64, |b, i| b.iter(|| seen = *i));
        group.finish();
        assert_eq!(seen, 7);

        // The JSON report carries every run so far, with medians.
        let path = std::env::temp_dir().join("criterion_stub_report_test.json");
        std::env::set_var("CRITERION_STUB_JSON", &path);
        write_json_report("stub-test");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"suite\": \"stub-test\""), "{text}");
        assert!(text.contains("\"id\": \"t/count\""), "{text}");
        assert!(text.contains("\"id\": \"g/f/7\""), "{text}");
        assert!(text.contains("\"median_ns\""), "{text}");
        assert!(text.contains("\"iters\": 3"), "{text}");
        let _ = std::fs::remove_file(&path);
        std::env::remove_var("CRITERION_STUB_JSON");
        std::env::remove_var("CRITERION_STUB_ITERS");
    }
}
