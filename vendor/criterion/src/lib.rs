//! Offline stand-in for the `criterion` crate. Implements the API subset
//! used by this workspace's benches: enough to compile them, run a short
//! timed loop per benchmark, and print mean wall-clock times. No warm-up
//! modelling, statistics, or HTML reports.
//!
//! Iteration counts can be controlled with the `CRITERION_STUB_ITERS`
//! environment variable (default: up to `sample_size` iterations or 200 ms
//! per benchmark, whichever comes first).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver standing in for criterion's `Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.default_sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies a benchmark as a function name plus a parameter value.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Hands the routine under measurement to the timing loop.
pub struct Bencher {
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.max_iters {
            black_box(routine());
            iters += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let max_iters = std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(sample_size as u64)
        .max(1);
    let mut b = Bencher {
        max_iters,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed.as_secs_f64() * 1e3 / b.iters as f64
    } else {
        0.0
    };
    println!("bench {id:60} {:>6} iters  mean {mean:10.3} ms", b.iters);
}

/// Collects benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // A single test: the env var is process-global and tests run in
    // parallel threads, so setting it from two tests would race.
    #[test]
    fn bench_functions_run_routines() {
        std::env::set_var("CRITERION_STUB_ITERS", "3");
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("t/count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);

        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = 0i64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7i64, |b, i| b.iter(|| seen = *i));
        group.finish();
        assert_eq!(seen, 7);
        std::env::remove_var("CRITERION_STUB_ITERS");
    }
}
