//! Offline stand-in for the `rand` crate, implementing the 0.9-style API
//! subset this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`
//! and `Rng::random_range` over integer ranges.
//!
//! The generator is SplitMix64: deterministic, fast, and statistically fine
//! for synthetic test-data generation (it is *not* cryptographic).

use core::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges a value can be sampled from (integer ranges only).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
