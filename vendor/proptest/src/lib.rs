//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! range, tuple, [`sample::select`] and [`collection::vec`] strategies,
//! [`arbitrary::any`], and the [`proptest!`], [`prop_oneof!`] and
//! `prop_assert*!` macros.
//!
//! Differences from the real crate: cases are generated from a deterministic
//! per-test RNG (seeded from the test's name) and failures are **not
//! shrunk** — the failing panic message reports the case index instead.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::sample::select` / `prop::collection::vec`
/// resolve after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::{collection, sample};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg = $crate::strategy::Strategy::new_value(&$strategy, &mut rng);)*
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest stub: case {}/{} of `{}` failed (no shrinking)",
                            case + 1, config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Chooses uniformly among the given strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range + map + oneof + recursive strategies all generate.
        #[test]
        fn composite_strategies(n in 1..=3usize,
                                s in prop::sample::select(vec!["a", "b"]).prop_map(str::to_string),
                                v in prop::collection::vec((0..4i64, 0..4i64), 0..12),
                                x in any::<i64>()) {
            prop_assert!((1..=3).contains(&n));
            prop_assert!(s == "a" || s == "b");
            prop_assert!(v.len() < 12);
            for (a, b) in &v {
                prop_assert!((0..4).contains(a), "a = {}", a);
                prop_assert!((0..4).contains(b));
            }
            prop_assert_eq!(x, x);
        }

        #[test]
        fn recursive_strategies_terminate(depths in prop::collection::vec(arb_nested(), 0..4)) {
            for d in depths {
                prop_assert!(d <= 4);
            }
        }
    }

    /// Depth counter built with `prop_recursive`, to exercise the machinery.
    fn arb_nested() -> impl Strategy<Value = u32> {
        let leaf = prop_oneof![0..1u32, 0..1u32];
        leaf.prop_recursive(4, 16, 2, |inner| inner.prop_map(|d| d + 1))
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        let s = any::<u64>();
        for _ in 0..10 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
