//! The [`Strategy`] trait and combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A way of generating values of some type from an RNG.
///
/// Unlike the real proptest, a strategy here generates values directly (no
/// value trees, no shrinking).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Build a recursive strategy: `recurse` wraps an inner strategy into a
    /// one-level-deeper one, and generation picks a depth in `0..=depth`
    /// uniformly. `desired_size` and `expected_branch_size` are accepted for
    /// API compatibility but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let mut levels = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("at least the leaf level").clone();
            levels.push(recurse(prev).boxed());
        }
        BoxedStrategy::new(move |rng| {
            let i = rng.below(levels.len());
            levels[i].new_value(rng)
        })
    }

    /// Type-erase the strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.new_value(rng))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> BoxedStrategy<T> {
    pub fn new(generate: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            generate: Rc::new(generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`crate::prop_oneof!`]: uniform choice among same-typed strategies.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].new_value(rng)
    }
}

// Integer ranges are strategies; sampling is delegated to the rand stub
// (the single home of the range-sampling logic).
macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
