//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::generate(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn generate(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
