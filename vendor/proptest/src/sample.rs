//! Strategies that sample from explicit collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice of one element of `items`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}

pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}
