//! Strategies for collections.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's size.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// `Vec`s of values from `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
