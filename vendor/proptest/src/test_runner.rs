//! Configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of proptest's `ProptestConfig`: only the case count.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG seeded from the test's name so runs are reproducible.
/// Wraps the vendored rand stub's generator (as real proptest wraps rand).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform index into `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (self.next_u64() % n as u64) as usize
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
