//! Semantic optimization and generalized tableau minimization — the
//! paper's second and third objectives, on top of physical data
//! independence.
//!
//! ```sh
//! cargo run --example semantic_optimization
//! ```

use universal_plans::prelude::*;

fn main() {
    tableau_minimization();
    join_elimination();
    key_collapse();
}

/// §3's minimization example: chasing backwards with trivial constraints.
fn tableau_minimization() {
    println!("=== generalized tableau minimization (paper §3) ===");
    let q = parse_query(
        "select struct(A = p.A, B = r.B) from R p, R q, R r \
         where p.B = q.A and q.B = r.B",
    )
    .unwrap();
    let m = minimize(&q, &Default::default());
    println!("query:     {q}");
    println!("minimized: {m}\n");
    assert_eq!(m.from.len(), 2);
}

/// Referential integrity lets the backchase drop a join entirely
/// ("use of referential integrity constraints to eliminate dependent
/// joins", paper §6).
fn join_elimination() {
    println!("=== RIC-driven join elimination ===");
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("Orders", [("OId", Type::Int), ("Cust", Type::Int)]);
    catalog.add_logical_relation("Customers", [("CId", Type::Int), ("Name", Type::Str)]);
    catalog.add_direct_mapping("Orders");
    catalog.add_direct_mapping("Customers");
    catalog
        .add_semantic_constraint(cb_catalog::builtin::foreign_key(
            "fk(Orders.Cust)",
            "Orders",
            "Cust",
            "Customers",
            "CId",
        ))
        .unwrap();

    // The join with Customers contributes nothing to the output; the FK
    // makes it redundant.
    let q = parse_query("select struct(O = o.OId) from Orders o, Customers c where o.Cust = c.CId")
        .unwrap();
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    println!("query: {q}");
    println!("plan:  {}\n", outcome.best.query);
    assert_eq!(outcome.best.query.from.len(), 1);

    // Without the constraint, the join stays.
    let bare = catalog.without_semantic_constraints();
    let outcome2 = Optimizer::new(&bare).optimize(&q).unwrap();
    assert_eq!(outcome2.best.query.from.len(), 2);
    println!(
        "without the FK the plan keeps both scans: {}",
        outcome2.best.query
    );
}

/// A key constraint collapses a self-join (EGD chase + backchase).
fn key_collapse() {
    println!("\n=== KEY-driven self-join collapse ===");
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("Emp", [("Id", Type::Int), ("Name", Type::Str)]);
    catalog.add_direct_mapping("Emp");
    catalog
        .add_semantic_constraint(cb_catalog::builtin::key_constraint(
            "key(Emp.Id)",
            "Emp",
            "Id",
        ))
        .unwrap();
    let q =
        parse_query("select struct(N1 = e.Name, N2 = f.Name) from Emp e, Emp f where e.Id = f.Id")
            .unwrap();
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    println!("query: {q}");
    println!("plan:  {}", outcome.best.query);
    assert_eq!(outcome.best.query.from.len(), 1);
}
