//! Paper §4, scenario 1: systematic discovery of index access paths.
//!
//! "Conventional relational optimization methods have long relied on
//! ad-hoc heuristics for introducing indexes into a plan" — here the
//! indexes enter the plan space through their constraints alone.
//!
//! ```sh
//! cargo run --example relational_indexes
//! ```

use std::time::Instant;

use universal_plans::prelude::*;

fn main() {
    let mut catalog = cb_catalog::scenarios::relational_indexes::catalog();
    let q = cb_catalog::scenarios::relational_indexes::query();
    println!("query: {q}\n");

    let params = cb_engine::RabcParams {
        n_rows: 50_000,
        distinct_a: 500,
        distinct_b: 200,
        seed: 7,
    };
    let mut instance = cb_engine::rabc_instance(&params);
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    println!("{}", cb_optimizer::explain(&outcome));

    // Execute the base-scan plan vs. the chosen index plan.
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let t0 = Instant::now();
    let scan_rows = ev.eval_query(&q).unwrap();
    let scan_time = t0.elapsed();
    let t1 = Instant::now();
    let plan_rows = ev.eval_query(&outcome.best.query).unwrap();
    let plan_time = t1.elapsed();
    assert_eq!(scan_rows, plan_rows);
    println!(
        "base scan: {scan_time:?}; chosen plan: {plan_time:?} ({} rows, {:.1}x faster)",
        plan_rows.len(),
        scan_time.as_secs_f64() / plan_time.as_secs_f64().max(1e-9),
    );
}
