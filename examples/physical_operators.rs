//! Physical operator pipelines: compiling chosen plans into explicit
//! operator trees, including on-the-fly hash joins (paper §2's "hash
//! tables" discussion and Algorithm 1's step 3 mapping into physical
//! operators).
//!
//! ```sh
//! cargo run --example physical_operators
//! ```

use std::time::Instant;

use universal_plans::engine::exec::{compile, execute, execute_with_stats, CompileOptions};
use universal_plans::prelude::*;

fn main() {
    // R(A,B) ⋈ S(B,C) over plain tables — the case where an on-the-fly
    // hash table is the only way to beat the nested loop.
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");

    let mut instance = Instance::new();
    // 2000 rows ≈ 4M nested-loop pairs: enough for the hash join to win
    // by orders of magnitude without dominating the examples smoke test.
    let n = 2000i64;
    instance.set(
        "R",
        Value::set(
            (0..n).map(|k| Value::record([("A", Value::Int(k)), ("B", Value::Int(k % 100))])),
        ),
    );
    instance.set(
        "S",
        Value::set(
            (0..n).map(|k| Value::record([("B", Value::Int(k % 100)), ("C", Value::Int(k))])),
        ),
    );

    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();

    let ev = Evaluator::for_catalog(&catalog, &instance);

    let nested = compile(
        &q,
        CompileOptions {
            hash_joins: false,
            ..Default::default()
        },
    );
    let hashed = compile(
        &q,
        CompileOptions {
            hash_joins: true,
            ..Default::default()
        },
    );
    println!("nested-loop pipeline: {nested}");
    println!("hash-join pipeline:   {hashed}");

    let t0 = Instant::now();
    let a = execute(&ev, &nested).unwrap();
    let t_nested = t0.elapsed();
    let t1 = Instant::now();
    let (b, stats) = execute_with_stats(&ev, &hashed).unwrap();
    let t_hash = t1.elapsed();
    assert_eq!(a, b);
    println!(
        "nested loop: {t_nested:?}; hash join: {t_hash:?} ({} rows, {:.1}x faster)",
        a.len(),
        t_nested.as_secs_f64() / t_hash.as_secs_f64().max(1e-9)
    );
    println!("\nwhere the hash pipeline's rows went:");
    print!("{}", stats.render(&hashed));

    // The same machinery executes the optimizer's chosen plans, e.g. the
    // navigation join of §4.
    let mut view_cat = cb_catalog::scenarios::relational_views::catalog();
    let mut view_inst = cb_engine::join_instance(&cb_engine::JoinParams {
        n_r: 1500,
        n_s: 1500,
        match_fraction: 0.05,
        seed: 11,
    });
    Materializer::new(&view_cat)
        .materialize(&mut view_inst)
        .unwrap();
    *view_cat.stats_mut() = cb_engine::collect_stats(&view_inst);
    let outcome = Optimizer::new(&view_cat)
        .optimize(&cb_catalog::scenarios::relational_views::query())
        .unwrap();
    let pipeline = compile(
        &outcome.best.query,
        CompileOptions {
            hash_joins: true,
            ..Default::default()
        },
    );
    println!("\nchosen plan:   {}", outcome.best.query);
    println!("as a pipeline: {pipeline}");
    let ev2 = Evaluator::for_catalog(&view_cat, &view_inst);
    let rows = execute(&ev2, &pipeline).unwrap();
    let reference = ev2
        .eval_query(&cb_catalog::scenarios::relational_views::query())
        .unwrap();
    assert_eq!(rows, reference);
    println!("pipeline result matches Q on {} rows", rows.len());
}
