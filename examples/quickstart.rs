//! Quickstart: declare a schema, add an index, optimize a query, run the
//! plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use universal_plans::prelude::*;

fn main() {
    // 1. A logical relation R(A, B, C), directly stored, plus a secondary
    //    index on A. The index is *described to the optimizer purely by
    //    constraints* (SI1/SI2/SI3 of the paper).
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int), ("C", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_secondary_index("SA", "R", "A").unwrap();

    println!("implementation-mapping constraints D':");
    for d in catalog.mapping_constraints() {
        println!("  {d}");
    }

    // 2. Some data, with the physical structures built from it.
    let mut instance = cb_engine_instance();
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();

    // 3. Statistics for the cost model.
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    // 4. Optimize.
    let q = parse_query("select struct(C = r.C) from R r where r.A = 5").unwrap();
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    println!("\n{}", cb_optimizer::explain(&outcome));

    // 5. Execute both the logical query and the chosen plan — same rows.
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let logical = ev.eval_query(&q).unwrap();
    let physical = ev.eval_query(&outcome.best.query).unwrap();
    assert_eq!(logical, physical);
    println!("rows: {}", physical.len());
    for row in physical.iter().take(5) {
        println!("  {row}");
    }
}

fn cb_engine_instance() -> Instance {
    let mut instance = Instance::new();
    let rows: Vec<Value> = (0..1000)
        .map(|i| {
            Value::record([
                ("A", Value::Int(i % 100)),
                ("B", Value::Int(i % 7)),
                ("C", Value::Int(i)),
            ])
        })
        .collect();
    instance.set("R", Value::set(rows));
    instance
}
