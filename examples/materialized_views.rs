//! Paper §4, scenario 2: answering queries using views *and* indexes.
//!
//! The frameworks the paper contrasts with can only produce the base plan
//! `R ⋈ S` or the non-minimal `V ⋈ R ⋈ S`; with dictionaries in the plan
//! language, C&B derives the navigation join
//! `from V v, IR{v.A} r', IS{r'.B} s'` — and the cost-based choice flips
//! as the view grows.
//!
//! ```sh
//! cargo run --example materialized_views
//! ```

use std::time::Instant;

use universal_plans::engine::exec::{compile, execute, CompileOptions};
use universal_plans::prelude::*;

fn main() {
    for (label, match_fraction) in [
        ("selective view (|V| small)", 0.02),
        ("useless view (|V| huge)", 0.98),
    ] {
        println!("=== {label} ===");
        let mut catalog = cb_catalog::scenarios::relational_views::catalog();
        let q = cb_catalog::scenarios::relational_views::query();
        // 2500×2500 keeps the base join visibly painful (≈6M pairs, whole
        // seconds) while the navigation join stays sub-millisecond; the
        // old 5000×5000 spent ~25 s proving the same point.
        let params = cb_engine::JoinParams {
            n_r: 2_500,
            n_s: 2_500,
            match_fraction,
            seed: 11,
        };
        let mut instance = cb_engine::join_instance(&params);
        Materializer::new(&catalog)
            .materialize(&mut instance)
            .unwrap();
        *catalog.stats_mut() = cb_engine::collect_stats(&instance);
        println!(
            "|R| = {}, |S| = {}, |V| = {}",
            instance.cardinality("R").unwrap(),
            instance.cardinality("S").unwrap(),
            instance.cardinality("V").unwrap()
        );

        let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
        println!("chosen plan: {}", outcome.best.query);
        println!("estimated cost: {:.1}", outcome.best.cost);

        let ev = Evaluator::for_catalog(&catalog, &instance);
        let t0 = Instant::now();
        let base = ev.eval_query(&q).unwrap();
        let base_time = t0.elapsed();
        let t1 = Instant::now();
        let best = ev.eval_query(&outcome.best.query).unwrap();
        let best_time = t1.elapsed();
        assert_eq!(base, best);
        println!(
            "base join: {base_time:?}; chosen plan: {best_time:?} ({} rows)",
            best.len()
        );

        // The same base join through the slot-compiled pipeline executor:
        // the hash-join rewrite plus the borrow-only register file turn
        // the interpreter's painful nested loop into one build + |R|
        // probes, without touching the optimizer's choice.
        let hashed = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let t2 = Instant::now();
        let piped = execute(&ev, &hashed).unwrap();
        let pipe_time = t2.elapsed();
        assert_eq!(piped, base);
        println!(
            "base join, slot-compiled hash pipeline: {pipe_time:?} ({:.0}x over the interpreter)\n",
            base_time.as_secs_f64() / pipe_time.as_secs_f64().max(1e-9)
        );
    }
}
