//! The paper's running example, end to end (Figs. 2–3, plans P1–P4).
//!
//! ```sh
//! cargo run --example projdept
//! ```

use universal_plans::prelude::*;

fn main() {
    // Figs. 2–3: the ProjDept logical schema with RIC/INV/KEY constraints
    // and the physical schema {Proj, Dept-dictionary, I, SI, JI}.
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();

    println!("logical schema:\n{}", catalog.logical());
    println!("physical schema:\n{}", catalog.physical());
    println!("query Q:\n  {q}\n");

    // Generate data, build the physical structures, collect statistics.
    let params = cb_engine::ProjDeptParams {
        n_depts: 50,
        projs_per_dept: 10,
        n_customers: 25,
        seed: 42,
    };
    let mut instance = cb_engine::projdept_instance(&params);
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    // Every declared constraint holds on the generated instance.
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let violations = cb_engine::violations(&ev, &catalog.all_constraints()).unwrap();
    assert!(
        violations.is_empty(),
        "constraint violations: {violations:?}"
    );

    // Algorithm 1.
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    println!("{}", cb_optimizer::explain(&outcome));

    // The paper's four plans, evaluated against the chosen plan and Q.
    let reference = ev.eval_query(&q).unwrap();
    println!(
        "Q returns {} rows; checking the paper's plans:",
        reference.len()
    );
    for (i, plan) in cb_catalog::scenarios::projdept::paper_plans()
        .iter()
        .enumerate()
    {
        let rows = ev.eval_query(plan).unwrap();
        let same = rows == reference;
        println!("  P{}: {} rows, equal to Q: {}", i + 1, rows.len(), same);
        assert!(same);
    }
    let best_rows = ev.eval_query(&outcome.best.query).unwrap();
    assert_eq!(best_rows, reference);
    println!("chosen plan agrees with Q on {} rows", best_rows.len());
}
